"""Publish-once snapshot transport for dynamic-graph task streams.

The dynamic replay tags every :class:`~repro.parallel.tasks.WalkTask` with
its post-insertion :class:`~repro.graph.csr.CSRGraph` snapshot.  Before this
module, that snapshot rode the pool's pickle channel inside *every chunk
job* — for a task of J chunks the same O(n + m) graph payload crossed the
pipe J times and was deserialized J times (the "per-job snapshot pickling"
cost the ROADMAP flagged after PR 3).

:class:`SnapshotStore` ships each snapshot **once**: the consumer pickles
the graph a single time into a ``multiprocessing.shared_memory`` segment,
and chunk jobs carry only a tiny ``("shm", sid, spec)`` reference.  Each
worker attaches, deserializes once, and caches the graph by snapshot id —
so a snapshot reaches a worker once per epoch tag no matter how many chunk
jobs it spans.  When shared memory is unavailable the store degrades to a
``("bytes", sid, payload)`` reference carrying the pre-pickled payload per
job (bytes still cross per job, but the consumer-side pickling and the
worker-side deserialization stay once-per-snapshot thanks to the same
caches).

Delta transport
---------------
High-rate streams (one edge insertion per event) make even publish-once
O(n + m) per event: every event is a new snapshot.  When a task carries a
``delta`` (the new-edge batch such that its graph equals the previous
snapshot with those edges inserted — see
:meth:`repro.graph.dynamic.DynamicGraph.walk_tasks`), the store publishes
the chain *base* snapshot once in full and thereafter ships
``("delta", sid, base_ref, payload)`` references whose payload is only the
pickled edge array **cumulative since the base** — O(delta) bytes per
event.  Workers rebuild the snapshot by patching their cached base through
:meth:`~repro.graph.csr.CSRGraph.insert_edges` (the same vectorized merge
the consumer ran), so the patched graph is bit-identical to what a full
pickle would have delivered.

Deltas are cumulative from the base — not relative to the immediately
preceding sid — because a worker may never see intermediate sids (other
workers took those jobs).  Any single delta ref therefore suffices to
materialize its snapshot from the base alone.

Every ``rebase_every``-th snapshot is published in full again (the re-base
knob): chains stay short, so worker caches and the consumer's retire
protocol never hold more than one full snapshot per chain, and a late
joiner is at most ``rebase_every - 1`` cheap patches behind.
``rebase_every=1`` disables deltas entirely (every snapshot full).  A
cheap arc-count invariant guards the chain: if an offered delta does not
account exactly for the snapshot's arc growth (e.g. a hand-built task
stream with overlapping batches), the store falls back to a full publish
for that snapshot rather than risk a wrong graph.

Segment lifecycle (create → close → unlink) is statically enforced by the
``shm-lifecycle`` rule of ``tools/reprolint`` (README "Static analysis &
typing").

Lifecycle
---------
Snapshot ids (``sid``) are assigned per task in submission order, so they
are monotonically non-decreasing along both the consumer's FIFO result
channel and each worker's job sequence.  That ordering is the whole
protocol:

* the consumer retires (unlinks) a segment as soon as a *result* for a
  higher sid arrives — FIFO consumption guarantees every job of the lower
  sid has completed — **except the live chain base**, which outstanding
  delta refs still point at (it retires after the next re-base, once a
  result passes the new base's sid);
* a worker evicts cached snapshots with a lower sid than the job it is
  running — it can never see them again — keeping the job's own sid and,
  for delta jobs, the chain base's sid.

``bytes_shipped`` / ``bytes_saved`` feed ``PipelineTelemetry``:
``bytes_saved`` counts the payload bytes that the per-job scheme would have
pushed through the pickle channel but the store did not.
``delta_bytes_shipped`` / ``delta_refs`` / ``rebase_count`` are the delta
extension's counters (→ ``ipc_delta_bytes`` / ``delta_applies`` /
``rebase_count`` in the telemetry).
"""

from __future__ import annotations

import pickle

import numpy as np

from repro.parallel.shm_ring import _open_untracked

__all__ = ["DEFAULT_REBASE_EVERY", "SnapshotStore", "resolve_snapshot_ref"]

#: Full-snapshot re-base period for delta chains: 1 full publish followed by
#: up to ``DEFAULT_REBASE_EVERY - 1`` delta publishes.  16 keeps worst-case
#: worker catch-up at 15 vectorized patches while amortizing the full O(n+m)
#: publish to ~1/16 of events; ``rebase_every=1`` disables deltas.
DEFAULT_REBASE_EVERY = 16


def _sym_arcs(edges: np.ndarray) -> int:
    """Stored-arc count a canonical new-edge batch adds to an undirected
    CSR: two arcs per proper edge, one per self-loop."""
    return int(2 * edges.shape[0] - np.count_nonzero(edges[:, 0] == edges[:, 1]))


class SnapshotStore:
    """Consumer-side snapshot publisher (one instance per generation pass).

    ``ref_for(sid, graph, delta=...)`` returns the picklable job reference
    for a snapshot, publishing it on first call — in full, or as an
    O(delta) edge payload chained to the last full publish;
    ``retire_below(sid)`` unlinks segments every job of which has provably
    completed; ``close()`` unlinks everything at pass end.
    """

    def __init__(self, *, rebase_every: int = DEFAULT_REBASE_EVERY):
        if not isinstance(rebase_every, int) or rebase_every < 1:
            raise ValueError("rebase_every must be a positive integer")
        self.rebase_every = rebase_every
        self._segments: dict[int, object] = {}
        self._refs: dict[int, tuple] = {}
        self._payload_len: dict[int, int] = {}
        # live delta chain: base sid, per-snapshot new-edge batches since the
        # base, and the expected arc count (the delta-consistency guard)
        self._chain_base: int | None = None
        self._chain_edges: list[np.ndarray] = []
        self._chain_arcs = 0
        self.bytes_shipped = 0
        self.bytes_saved = 0
        self.delta_bytes_shipped = 0
        self.delta_refs = 0
        self.rebase_count = 0

    def ref_for(self, sid: int, graph, delta: np.ndarray | None = None) -> tuple:
        """The job reference for snapshot ``sid``, publishing on first use.

        ``delta``, when given, is the new-edge batch turning the *previous*
        snapshot into ``graph``; the store ships it instead of the graph
        whenever a chain base is live, the chain is shorter than
        ``rebase_every``, and the arc-count guard confirms the delta fully
        explains the snapshot's growth.
        """
        ref = self._refs.get(sid)
        if ref is not None:
            # every job after the first rides for free (shm) or re-ships the
            # pre-pickled payload (bytes fallback); a delta job re-ships its
            # O(delta) payload (plus the base payload iff the base itself is
            # in the bytes fallback — the base ref rides inside the delta ref)
            if ref[0] == "shm":
                self.bytes_saved += self._payload_len[sid]
            elif ref[0] == "bytes":
                self.bytes_shipped += self._payload_len[sid]
            else:
                self.delta_bytes_shipped += self._payload_len[sid]
                if ref[2][0] == "bytes":
                    self.bytes_shipped += self._payload_len[ref[2][1]]
            return ref
        if delta is not None and self._usable_delta(graph, delta):
            return self._publish_delta(sid, delta)
        return self._publish_full(sid, graph)

    def _usable_delta(self, graph, delta: np.ndarray) -> bool:
        if self.rebase_every == 1 or self._chain_base is None:
            return False
        if 1 + len(self._chain_edges) >= self.rebase_every:
            return False  # chain at length limit → re-base now
        # guard: the delta must account exactly for the arc growth since the
        # chain's last snapshot, else workers would patch to a wrong graph
        return graph.n_arcs == self._chain_arcs + _sym_arcs(delta)

    def _publish_delta(self, sid: int, delta: np.ndarray) -> tuple:
        self._chain_edges.append(np.asarray(delta, dtype=np.int64).reshape(-1, 2))
        self._chain_arcs += _sym_arcs(delta)
        cumulative = (
            self._chain_edges[0]
            if len(self._chain_edges) == 1
            else np.concatenate(self._chain_edges)
        )
        payload = pickle.dumps(cumulative, protocol=pickle.HIGHEST_PROTOCOL)
        base_ref = self._refs[self._chain_base]
        ref = ("delta", sid, base_ref, payload)
        self._refs[sid] = ref
        self._payload_len[sid] = len(payload)
        self.delta_bytes_shipped += len(payload)
        self.delta_refs += 1
        if base_ref[0] == "bytes":
            self.bytes_shipped += self._payload_len[self._chain_base]
        return ref

    def _publish_full(self, sid: int, graph) -> tuple:
        payload = pickle.dumps(graph, protocol=pickle.HIGHEST_PROTOCOL)
        self._payload_len[sid] = len(payload)
        shm = self._create_segment(len(payload))
        if shm is not None:
            shm.buf[: len(payload)] = payload
            self._segments[sid] = shm
            ref = ("shm", sid, {"name": shm.name, "size": len(payload)})
        else:
            ref = ("bytes", sid, payload)
        self._refs[sid] = ref
        self.bytes_shipped += len(payload)
        if self._chain_edges:
            self.rebase_count += 1  # this full publish ends a live delta chain
        self._chain_base = sid
        self._chain_edges = []
        self._chain_arcs = graph.n_arcs
        return ref

    def _create_segment(self, size: int):
        from multiprocessing import shared_memory

        try:
            return shared_memory.SharedMemory(create=True, size=size)
        except Exception:
            # no /dev/shm, size limits, … → bytes fallback for THIS
            # snapshot only: one oversized snapshot (or a transient limit)
            # must not degrade every later snapshot to per-job payloads
            return None

    def retire_below(self, sid: int) -> None:
        """Retire every snapshot with id < ``sid``: a result for ``sid``
        proves, via FIFO consumption, that their jobs all completed (and
        submission sids are non-decreasing, so no further ``ref_for`` can
        ask for them).  Unlinks the shm segment and drops the cached
        ref/payload — in the bytes fallback the ref *is* the full pickled
        payload, so eviction here is what keeps the consumer's working set
        O(live snapshots) instead of O(all snapshots).

        The live chain base is exempt even when its sid is below ``sid``:
        delta refs yet to be published (and already-published ones still in
        flight) embed it, so it survives until a re-base starts a new chain
        and a result passes the *new* base's sid."""
        for old in [s for s in self._refs if s < sid and s != self._chain_base]:
            self._retire(old)

    def close(self) -> None:
        """Retire everything (pass teardown; never raises)."""
        for sid in list(self._refs):
            self._retire(sid)

    def _retire(self, sid: int) -> None:
        self._refs.pop(sid, None)
        self._payload_len.pop(sid, None)
        shm = self._segments.pop(sid, None)
        if shm is not None:
            try:
                shm.close()
                shm.unlink()
            except Exception:
                pass


#: Worker-side cache: sid → deserialized graph.  Populated only inside pool
#: worker processes (forked children start with the parent's — empty — dict;
#: the inline path never touches snapshot refs).
_WORKER_SNAPSHOTS: dict[int, object] = {}


def _load_full(ref):
    """Deserialize a full ``("shm" | "bytes", sid, payload)`` reference."""
    kind, _sid, payload = ref
    if kind == "shm":
        shm = _open_untracked(payload["name"])
        try:
            return pickle.loads(bytes(shm.buf[: payload["size"]]))
        finally:
            shm.close()
    return pickle.loads(payload)


def resolve_snapshot_ref(ref):
    """Worker side: the graph a job reference points at, deserializing at
    most once per (worker, sid) and evicting sids this worker has moved
    past (per-worker job sids are non-decreasing).

    A ``("delta", sid, base_ref, payload)`` reference materializes by
    patching the chain base — cache hit, or one ``_load_full`` if this
    worker never saw a base job — with the cumulative edge batch via
    :meth:`~repro.graph.csr.CSRGraph.insert_edges`; the result is
    bit-identical to unpickling a full snapshot.  Eviction then keeps the
    base alongside the patched graph: later deltas of the same chain reuse
    it, and re-patching from it is how a worker skips sids it never ran."""
    kind, sid = ref[0], ref[1]
    graph = _WORKER_SNAPSHOTS.get(sid)
    if graph is not None:
        return graph
    if kind == "delta":
        base_ref, payload = ref[2], ref[3]
        base_sid = base_ref[1]
        base = _WORKER_SNAPSHOTS.get(base_sid)
        if base is None:
            base = _load_full(base_ref)
        graph = base.insert_edges(pickle.loads(payload))
        keep = {sid, base_sid}
        for old in [s for s in _WORKER_SNAPSHOTS if s < sid and s not in keep]:
            del _WORKER_SNAPSHOTS[old]
        _WORKER_SNAPSHOTS[base_sid] = base
    else:
        graph = _load_full(ref)
        for old in [s for s in _WORKER_SNAPSHOTS if s < sid]:
            del _WORKER_SNAPSHOTS[old]
    _WORKER_SNAPSHOTS[sid] = graph
    return graph
