"""Publish-once snapshot transport for dynamic-graph task streams.

The dynamic replay tags every :class:`~repro.parallel.tasks.WalkTask` with
its post-insertion :class:`~repro.graph.csr.CSRGraph` snapshot.  Before this
module, that snapshot rode the pool's pickle channel inside *every chunk
job* — for a task of J chunks the same O(n + m) graph payload crossed the
pipe J times and was deserialized J times (the "per-job snapshot pickling"
cost the ROADMAP flagged after PR 3).

:class:`SnapshotStore` ships each snapshot **once**: the consumer pickles
the graph a single time into a ``multiprocessing.shared_memory`` segment,
and chunk jobs carry only a tiny ``("shm", sid, spec)`` reference.  Each
worker attaches, deserializes once, and caches the graph by snapshot id —
so a snapshot reaches a worker once per epoch tag no matter how many chunk
jobs it spans.  When shared memory is unavailable the store degrades to a
``("bytes", sid, payload)`` reference carrying the pre-pickled payload per
job (bytes still cross per job, but the consumer-side pickling and the
worker-side deserialization stay once-per-snapshot thanks to the same
caches).

Segment lifecycle (create → close → unlink) is statically enforced by the
``shm-lifecycle`` rule of ``tools/reprolint`` (README "Static analysis &
typing").

Lifecycle
---------
Snapshot ids (``sid``) are assigned per task in submission order, so they
are monotonically non-decreasing along both the consumer's FIFO result
channel and each worker's job sequence.  That ordering is the whole
protocol:

* the consumer retires (unlinks) a segment as soon as a *result* for a
  higher sid arrives — FIFO consumption guarantees every job of the lower
  sid has completed;
* a worker evicts cached snapshots with a lower sid than the job it is
  running — it can never see them again.

``bytes_shipped`` / ``bytes_saved`` feed ``PipelineTelemetry``:
``bytes_saved`` counts the payload bytes that the per-job scheme would have
pushed through the pickle channel but the store did not.
"""

from __future__ import annotations

import pickle

from repro.parallel.shm_ring import _open_untracked

__all__ = ["SnapshotStore", "resolve_snapshot_ref"]


class SnapshotStore:
    """Consumer-side snapshot publisher (one instance per generation pass).

    ``ref_for(sid, graph)`` returns the picklable job reference for a
    snapshot, publishing it on first call; ``retire_below(sid)`` unlinks
    segments every job of which has provably completed; ``close()`` unlinks
    everything at pass end.
    """

    def __init__(self):
        self._segments: dict[int, object] = {}
        self._refs: dict[int, tuple] = {}
        self._payload_len: dict[int, int] = {}
        self.bytes_shipped = 0
        self.bytes_saved = 0

    def ref_for(self, sid: int, graph) -> tuple:
        """The job reference for snapshot ``sid``, publishing on first use."""
        ref = self._refs.get(sid)
        if ref is not None:
            # every job after the first rides for free (shm) or re-ships the
            # pre-pickled payload (bytes fallback)
            if ref[0] == "shm":
                self.bytes_saved += self._payload_len[sid]
            else:
                self.bytes_shipped += self._payload_len[sid]
            return ref
        payload = pickle.dumps(graph, protocol=pickle.HIGHEST_PROTOCOL)
        self._payload_len[sid] = len(payload)
        shm = self._create_segment(len(payload))
        if shm is not None:
            shm.buf[: len(payload)] = payload
            self._segments[sid] = shm
            ref = ("shm", sid, {"name": shm.name, "size": len(payload)})
        else:
            ref = ("bytes", sid, payload)
        self._refs[sid] = ref
        self.bytes_shipped += len(payload)
        return ref

    def _create_segment(self, size: int):
        from multiprocessing import shared_memory

        try:
            return shared_memory.SharedMemory(create=True, size=size)
        except Exception:
            # no /dev/shm, size limits, … → bytes fallback for THIS
            # snapshot only: one oversized snapshot (or a transient limit)
            # must not degrade every later snapshot to per-job payloads
            return None

    def retire_below(self, sid: int) -> None:
        """Retire every snapshot with id < ``sid``: a result for ``sid``
        proves, via FIFO consumption, that their jobs all completed (and
        submission sids are non-decreasing, so no further ``ref_for`` can
        ask for them).  Unlinks the shm segment and drops the cached
        ref/payload — in the bytes fallback the ref *is* the full pickled
        payload, so eviction here is what keeps the consumer's working set
        O(live snapshots) instead of O(all snapshots)."""
        for old in [s for s in self._refs if s < sid]:
            self._retire(old)

    def close(self) -> None:
        """Retire everything (pass teardown; never raises)."""
        for sid in list(self._refs):
            self._retire(sid)

    def _retire(self, sid: int) -> None:
        self._refs.pop(sid, None)
        self._payload_len.pop(sid, None)
        shm = self._segments.pop(sid, None)
        if shm is not None:
            try:
                shm.close()
                shm.unlink()
            except Exception:
                pass


#: Worker-side cache: sid → deserialized graph.  Populated only inside pool
#: worker processes (forked children start with the parent's — empty — dict;
#: the inline path never touches snapshot refs).
_WORKER_SNAPSHOTS: dict[int, object] = {}


def resolve_snapshot_ref(ref):
    """Worker side: the graph a job reference points at, deserializing at
    most once per (worker, sid) and evicting sids this worker has moved
    past (per-worker job sids are non-decreasing)."""
    kind, sid, payload = ref
    graph = _WORKER_SNAPSHOTS.get(sid)
    if graph is None:
        if kind == "shm":
            shm = _open_untracked(payload["name"])
            try:
                graph = pickle.loads(bytes(shm.buf[: payload["size"]]))
            finally:
                shm.close()
        else:
            graph = pickle.loads(payload)
        for old in [s for s in _WORKER_SNAPSHOTS if s < sid]:
            del _WORKER_SNAPSHOTS[old]
        _WORKER_SNAPSHOTS[sid] = graph
    return graph
