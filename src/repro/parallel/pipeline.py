"""Parallel walk generation + a genuinely streaming pipelined trainer.

The board's division of labor (§3.2) is a two-stage pipeline: the PS samples
random walks *while* the PL trains on the previous ones.  On a multicore host
the same structure applies: walk sampling is Python/RNG-bound and
embarrassingly parallel across start nodes, while training is NumPy-bound.
This module provides

* :class:`ParallelWalkGenerator` — walk corpus generation fanned out over a
  ``multiprocessing`` pool (fork start method; the CSR arrays are shared
  copy-on-write, so workers carry no pickling cost for the graph).  Jobs
  go out through a consumer-driven bounded prefetch window (submit one as
  one is consumed, FIFO), so at most ``prefetch`` chunks are ever buffered
  ahead of the consumer — peak memory is set by the queue depth, not the
  corpus size.
* :func:`train_parallel` — the full pipeline: chunks of start nodes →
  worker walks → in-order training, with the main process training chunk
  *i* while workers generate chunks *i+1 … i+prefetch*.
* :class:`PipelineTelemetry` — per-stage timing (generation / stall / train)
  and buffering telemetry, attached to the returned ``TrainingResult``.

Negative-sampling sources (``negative_source``)
-----------------------------------------------
The paper builds its negative table from node frequencies over the *entire*
walk corpus (§3.1), which fundamentally conflicts with streaming: you cannot
know the final frequencies before the last walk exists.  Three strategies
trade fidelity against memory and overlap:

``"corpus"`` (default)
    The paper's construction, verbatim: buffer the whole first-epoch corpus,
    count frequencies, build the sampler, then train.  Exact semantics, but
    peak memory is O(corpus) and no walk/train overlap happens during the
    first epoch (later epochs stream).
``"degree"``
    Bootstrap the table from node degrees (:meth:`NegativeSampler.from_degrees`)
    — the stationary visit distribution of an unbiased walk, a close proxy
    for corpus frequency.  Training starts on the very first chunk, memory
    stays bounded by the prefetch window, overlap is maximal.  The sampling
    distribution differs slightly from the paper's.
``"two_pass"``
    A cheap counting pass streams the corpus once (walks discarded after
    counting), builds the exact corpus-frequency sampler, then a second
    identically-seeded pass streams the same walks into training.  Exact
    semantics *and* bounded memory, at the price of generating the corpus
    twice — bit-identical to ``"corpus"``.

Determinism: every chunk derives its own seed from (base seed, chunk
namespace, chunk index), the start list from a disjoint (base seed, starts
namespace) stream, and results are consumed in chunk order — so the trained
embedding is **bit-identical for any worker count and prefetch depth** under
every ``negative_source``.  The tests pin this invariant down.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from collections import deque
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.embedding.base import EmbeddingModel
from repro.embedding.trainer import TrainingResult, WalkTrainer, make_model
from repro.graph.csr import CSRGraph
from repro.sampling.negative import NegativeSampler, walk_frequencies
from repro.sampling.walks import Node2VecWalker, WalkParams
from repro.utils.rng import as_generator, draw_seed
from repro.utils.validation import check_in_set, check_positive

__all__ = [
    "NEGATIVE_SOURCES",
    "ParallelWalkGenerator",
    "PipelineTelemetry",
    "train_parallel",
]

#: Valid ``negative_source`` strategies (see module docstring).
NEGATIVE_SOURCES = ("corpus", "degree", "two_pass")

# Seed namespaces: chunk i draws from SeedSequence([seed, _CHUNK_NS, i]),
# the start list from SeedSequence([seed, _STARTS_NS]).  The two streams
# live in tuples of different shape *and* different second element, so no
# chunk index can ever collide with the start-list stream (the old scheme
# used [seed, 0xC0FFEE] for starts, which chunk i = 0xC0FFEE reaches).
_CHUNK_NS = 0
_STARTS_NS = 1

# Worker globals, populated by the pool initializer via fork.  Only pool
# worker processes ever write these; the inline path passes state explicitly.
_WORKER_GRAPH: CSRGraph | None = None
_WORKER_PARAMS: WalkParams | None = None


def _init_worker(graph: CSRGraph, params: WalkParams) -> None:
    global _WORKER_GRAPH, _WORKER_PARAMS
    _WORKER_GRAPH = graph
    _WORKER_PARAMS = params


def _run_chunk(
    graph: CSRGraph, params: WalkParams, starts: np.ndarray, seed
) -> tuple[list, float]:
    """Walk one chunk; returns ``(walks, generation_seconds)``."""
    t0 = time.perf_counter()
    walker = Node2VecWalker(graph, params, seed=seed)
    walks = [walker.walk(int(s)) for s in starts]
    return walks, time.perf_counter() - t0


def _walk_chunk(job: tuple) -> tuple[list, float]:
    """Pool entry point: run one chunk against the worker globals."""
    starts, seed = job
    return _run_chunk(_WORKER_GRAPH, _WORKER_PARAMS, starts, seed)


class _FlowStats:
    """In-flight walk accounting for one generation pass.

    ``peak_in_flight`` is the high-water mark of walks submitted to workers
    but not yet handed to the consumer, i.e. the quantity the bounded
    prefetch window is supposed to cap.  Both hooks run on the consumer
    thread (submission is consumer-driven), so no locking is needed.
    """

    def __init__(self):
        self.submitted_walks = 0
        self.consumed_walks = 0
        self.peak_in_flight = 0

    def on_submit(self, n: int) -> None:
        self.submitted_walks += n
        in_flight = self.submitted_walks - self.consumed_walks
        if in_flight > self.peak_in_flight:
            self.peak_in_flight = in_flight

    def on_consume(self, n: int) -> None:
        self.consumed_walks += n


@dataclass
class PipelineTelemetry:
    """Per-stage timing + buffering telemetry of one :func:`train_parallel`.

    ``generation_s`` sums the worker-side walk time (it may be fully hidden
    behind training); ``wait_s`` is the consumer's observable stall waiting
    for the next chunk; ``train_s`` is time inside the trainer.  A perfect
    pipeline hides all generation: ``wait_s ≈ 0``, ``overlap_efficiency ≈ 1``.

    ``n_chunks`` counts every chunk *consumed*, so per-chunk averages like
    ``generation_s / n_chunks`` stay meaningful for every source — for
    ``"two_pass"`` that includes the counting pass (≈ 2× the trained
    chunks, matching its doubled generation cost).
    """

    negative_source: str
    n_workers: int
    epochs: int
    n_chunks: int = 0
    generation_s: float = 0.0
    wait_s: float = 0.0
    train_s: float = 0.0
    total_s: float = 0.0
    peak_buffered_walks: int = 0

    @property
    def overlap_efficiency(self) -> float:
        """Fraction of generation cost hidden behind training, in [0, 1]."""
        if self.generation_s <= 0.0:
            return 1.0
        return max(0.0, min(1.0, 1.0 - self.wait_s / self.generation_s))


class ParallelWalkGenerator:
    """Chunked, seeded, optionally multiprocess walk generation.

    Parameters
    ----------
    graph, params:
        what to walk on and how.
    n_workers:
        0 or 1 → inline generation (no processes); ≥2 → a fork pool.
    chunk_size:
        start nodes per work item; larger chunks amortize IPC, smaller
        chunks pipeline better.
    seed:
        base seed; chunk ``i`` uses ``SeedSequence([seed, 0, i])`` and the
        start list ``SeedSequence([seed, 1])`` — disjoint namespaces, so the
        streams can never collide for any chunk index.
    prefetch:
        maximum chunks in flight ahead of the consumer (default
        ``max(2, 2 * n_workers)``).  Bounds peak buffered walks at
        ``prefetch * chunk_size`` regardless of corpus size.
    """

    def __init__(
        self,
        graph: CSRGraph,
        params: WalkParams | None = None,
        *,
        n_workers: int = 0,
        chunk_size: int = 256,
        seed: int = 0,
        prefetch: int | None = None,
    ):
        check_positive("chunk_size", chunk_size, integer=True)
        if n_workers < 0:
            raise ValueError("n_workers must be >= 0")
        if prefetch is None:
            prefetch = max(2, 2 * int(n_workers))
        check_positive("prefetch", prefetch, integer=True)
        self.graph = graph
        self.params = params or WalkParams()
        self.n_workers = int(n_workers)
        self.chunk_size = int(chunk_size)
        self.seed = int(seed)
        self.prefetch = int(prefetch)
        #: flow accounting of the most recent generation pass
        self.last_stats = _FlowStats()

    # ------------------------------------------------------------------ #
    # Seeding
    # ------------------------------------------------------------------ #

    def chunk_seed(self, i: int) -> np.random.SeedSequence:
        """The walk stream of chunk ``i``."""
        return np.random.SeedSequence([self.seed, _CHUNK_NS, int(i)])

    def starts_seed(self) -> np.random.SeedSequence:
        """The start-list shuffle stream (disjoint from every chunk)."""
        return np.random.SeedSequence([self.seed, _STARTS_NS])

    def _jobs(self, starts: np.ndarray) -> list[tuple]:
        return [
            (starts[lo : lo + self.chunk_size], self.chunk_seed(i))
            for i, lo in enumerate(range(0, starts.shape[0], self.chunk_size))
        ]

    def corpus_starts(self) -> np.ndarray:
        """The r-walks-per-node start list (shuffled per repetition, matching
        :meth:`Node2VecWalker.simulate`)."""
        rng = as_generator(self.starts_seed())
        n = self.graph.n_nodes
        reps = [rng.permutation(n) for _ in range(self.params.walks_per_node)]
        return np.concatenate(reps)

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #

    def generate_timed(
        self, starts: np.ndarray | None = None
    ) -> Iterator[tuple[list, float]]:
        """Yield ``(walk_chunk, generation_seconds)`` in deterministic chunk
        order, keeping at most ``prefetch`` chunks in flight.

        The prefetch window is driven entirely from the consumer side: jobs
        are submitted with ``apply_async`` and consumed FIFO, one fresh
        submission per consumed chunk.  Workers therefore never run more
        than ``prefetch`` chunks ahead — the property the streaming
        trainer's memory bound rests on — and no pool-internal thread ever
        blocks on caller state (throttling the lazy ``imap`` job feed
        instead can strand the pool's task-handler thread at shutdown,
        which ``Pool.terminate`` then joins forever).  ``self.last_stats``
        records the realized high-water mark.
        """
        if starts is None:
            starts = self.corpus_starts()
        starts = np.asarray(starts, dtype=np.int64)
        jobs = self._jobs(starts)
        stats = self.last_stats = _FlowStats()

        if self.n_workers <= 1:
            for chunk_starts, chunk_seed in jobs:
                stats.on_submit(len(chunk_starts))
                result = _run_chunk(self.graph, self.params, chunk_starts, chunk_seed)
                stats.on_consume(len(result[0]))
                yield result
            return

        ctx = mp.get_context("fork" if os.name == "posix" else "spawn")
        with ctx.Pool(
            self.n_workers,
            initializer=_init_worker,
            initargs=(self.graph, self.params),
        ) as pool:
            pending: deque = deque()
            job_iter = iter(jobs)

            def _submit_next() -> None:
                job = next(job_iter, None)
                if job is not None:
                    stats.on_submit(len(job[0]))
                    pending.append(pool.apply_async(_walk_chunk, (job,)))

            for _ in range(self.prefetch):
                _submit_next()
            # FIFO consumption of the submission order → deterministic
            while pending:
                walks, gen_s = pending.popleft().get()
                stats.on_consume(len(walks))
                _submit_next()
                yield walks, gen_s

    def generate(self, starts: np.ndarray | None = None) -> Iterator[list]:
        """Yield walk chunks in deterministic chunk order (timing stripped)."""
        for walks, _ in self.generate_timed(starts):
            yield walks

    def all_walks(self, starts: np.ndarray | None = None) -> list:
        return [w for chunk in self.generate(starts) for w in chunk]


def train_parallel(
    graph: CSRGraph,
    *,
    dim: int = 32,
    model: str | EmbeddingModel = "proposed",
    hyper=None,
    epochs: int = 1,
    n_workers: int = 0,
    chunk_size: int = 256,
    prefetch: int | None = None,
    negative_source: str = "corpus",
    negative_power: float = 0.75,
    seed=0,
    **model_kwargs,
) -> TrainingResult:
    """Streaming pipelined counterpart of :func:`repro.embedding.train_on_graph`.

    Walk chunks stream out of the worker pool through a bounded prefetch
    window while the main process trains on them — chunk *i* trains while
    workers generate chunks *i+1 … i+prefetch*, mirroring the PS/PL overlap
    of the board.  How soon training can start is governed by
    ``negative_source`` (see the module docstring for the trade-offs):

    * ``"corpus"`` — the paper's exact construction; buffers the entire
      first-epoch corpus before training (no first-epoch overlap, O(corpus)
      memory), later epochs stream.
    * ``"degree"`` — degree-bootstrapped sampler; streams from the first
      chunk with memory bounded by ``prefetch * chunk_size`` walks.
    * ``"two_pass"`` — one streamed counting pass, then streamed training
      over an identically-seeded regeneration; bit-identical to ``"corpus"``
      with bounded memory, at twice the generation cost.

    The result is bit-identical across ``n_workers`` and ``prefetch``
    settings for every ``negative_source`` (chunk-seeded generation,
    in-order consumption) — and bit-identical to itself run twice.  Seeds
    derive from the same 63-bit stream as the sequential trainer
    (:func:`repro.utils.rng.draw_seed`).

    Returns a :class:`TrainingResult` whose ``telemetry`` field carries the
    per-stage :class:`PipelineTelemetry`.
    """
    from repro.experiments.hyper import Node2VecParams

    check_positive("epochs", epochs, integer=True)
    check_in_set("negative_source", negative_source, NEGATIVE_SOURCES)
    hp = hyper or Node2VecParams()
    rng = as_generator(seed)

    if isinstance(model, str):
        mdl = make_model(model, graph.n_nodes, dim, seed=draw_seed(rng), **model_kwargs)
    elif model_kwargs:
        raise ValueError("model_kwargs only apply when model is a registry name")
    else:
        mdl = model

    # Draw every seed up front, independent of negative_source, so that
    # "corpus" and "two_pass" (same sampler distribution, same walk order)
    # consume identical streams and stay bit-identical to each other.
    sampler_seed = draw_seed(rng)
    epoch_seeds = [draw_seed(rng) for _ in range(epochs)]

    def _generator(epoch: int) -> ParallelWalkGenerator:
        return ParallelWalkGenerator(
            graph,
            hp.walk_params(),
            n_workers=n_workers,
            chunk_size=chunk_size,
            seed=epoch_seeds[epoch],
            prefetch=prefetch,
        )

    trainer = WalkTrainer(mdl, window=hp.w, ns=hp.ns)
    tele = PipelineTelemetry(
        negative_source=negative_source, n_workers=int(n_workers), epochs=int(epochs)
    )
    t_total = time.perf_counter()

    sampler: NegativeSampler | None = None
    if negative_source == "degree":
        sampler = NegativeSampler.from_degrees(
            graph, power=negative_power, seed=sampler_seed
        )

    def _consume(gen: ParallelWalkGenerator, on_chunk) -> None:
        """Drain one generation pass, folding stall/generation times, the
        chunk count and the buffering high-water mark into the telemetry."""
        t_wait = time.perf_counter()
        for walks, gen_s in gen.generate_timed():
            tele.wait_s += time.perf_counter() - t_wait
            tele.generation_s += gen_s
            tele.n_chunks += 1
            on_chunk(walks)
            t_wait = time.perf_counter()
        tele.peak_buffered_walks = max(
            tele.peak_buffered_walks, gen.last_stats.peak_in_flight
        )

    def _train_chunk(walks: list) -> None:
        t0 = time.perf_counter()
        trainer.train_corpus(walks, sampler)
        tele.train_s += time.perf_counter() - t0

    for epoch in range(epochs):
        gen = _generator(epoch)
        if sampler is None and negative_source == "corpus":
            # buffer-then-train: the paper's exact first-epoch semantics
            buffered: list = []
            _consume(gen, buffered.extend)
            tele.peak_buffered_walks = max(tele.peak_buffered_walks, len(buffered))
            sampler = NegativeSampler.from_walks(
                buffered, graph.n_nodes, power=negative_power, seed=sampler_seed
            )
            _train_chunk(buffered)
            continue
        if sampler is None and negative_source == "two_pass":
            # counting pass: same seed → the identical corpus, walks discarded
            freq = np.zeros(graph.n_nodes, dtype=np.int64)

            def _count_chunk(walks: list, _freq=freq) -> None:
                _freq += walk_frequencies(walks, graph.n_nodes)

            _consume(_generator(epoch), _count_chunk)
            sampler = NegativeSampler(freq, power=negative_power, seed=sampler_seed)
        _consume(gen, _train_chunk)

    tele.total_s = time.perf_counter() - t_total
    return trainer.result(hyper=hp, telemetry=tele)
