"""Parallel walk generation + pipelined training.

The board's division of labor (§3.2) is a two-stage pipeline: the PS samples
random walks while the PL trains on the previous ones.  On a multicore host
the same structure applies: walk sampling is Python/RNG-bound and
embarrassingly parallel across start nodes, while training is NumPy-bound.
This module provides

* :class:`ParallelWalkGenerator` — walk corpus generation fanned out over a
  ``multiprocessing`` pool (fork start method; the CSR arrays are shared
  copy-on-write, so workers carry no pickling cost for the graph);
* :func:`train_parallel` — the full pipeline: chunks of start nodes →
  worker walks → in-order training, overlapping generation with training.

Determinism: every chunk derives its own seed from (base seed, chunk index)
and results are consumed in chunk order, so the trained embedding is
**bit-identical for any worker count** — the invariant the tests pin down.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Iterator

import numpy as np

from repro.embedding.trainer import TrainingResult, WalkTrainer, make_model
from repro.graph.csr import CSRGraph
from repro.sampling.negative import NegativeSampler, walk_frequencies
from repro.sampling.walks import Node2VecWalker, WalkParams
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["ParallelWalkGenerator", "train_parallel"]

# worker globals (populated by the pool initializer via fork)
_WORKER_GRAPH: CSRGraph | None = None
_WORKER_PARAMS: WalkParams | None = None


def _init_worker(graph: CSRGraph, params: WalkParams) -> None:
    global _WORKER_GRAPH, _WORKER_PARAMS
    _WORKER_GRAPH = graph
    _WORKER_PARAMS = params


def _walk_chunk(job: tuple) -> list:
    """Run one chunk of walks inside a worker (or inline)."""
    starts, seed = job
    walker = Node2VecWalker(_WORKER_GRAPH, _WORKER_PARAMS, seed=seed)
    return [walker.walk(int(s)) for s in starts]


class ParallelWalkGenerator:
    """Chunked, seeded, optionally multiprocess walk generation.

    Parameters
    ----------
    graph, params:
        what to walk on and how.
    n_workers:
        0 or 1 → inline generation (no processes); ≥2 → a fork pool.
    chunk_size:
        start nodes per work item; larger chunks amortize IPC, smaller
        chunks pipeline better.
    seed:
        base seed; chunk ``i`` uses ``SeedSequence([seed, i])``.
    """

    def __init__(
        self,
        graph: CSRGraph,
        params: WalkParams | None = None,
        *,
        n_workers: int = 0,
        chunk_size: int = 256,
        seed: int = 0,
    ):
        check_positive("chunk_size", chunk_size, integer=True)
        if n_workers < 0:
            raise ValueError("n_workers must be >= 0")
        self.graph = graph
        self.params = params or WalkParams()
        self.n_workers = int(n_workers)
        self.chunk_size = int(chunk_size)
        self.seed = int(seed)

    def _jobs(self, starts: np.ndarray) -> list[tuple]:
        jobs = []
        for i, lo in enumerate(range(0, starts.shape[0], self.chunk_size)):
            chunk = starts[lo : lo + self.chunk_size]
            chunk_seed = np.random.SeedSequence([self.seed, i])
            jobs.append((chunk, chunk_seed))
        return jobs

    def corpus_starts(self) -> np.ndarray:
        """The r-walks-per-node start list (shuffled per repetition, matching
        :meth:`Node2VecWalker.simulate`)."""
        rng = as_generator(np.random.SeedSequence([self.seed, 0xC0FFEE]))
        n = self.graph.n_nodes
        reps = [rng.permutation(n) for _ in range(self.params.walks_per_node)]
        return np.concatenate(reps)

    def generate(self, starts: np.ndarray | None = None) -> Iterator[list]:
        """Yield walk chunks in deterministic chunk order."""
        if starts is None:
            starts = self.corpus_starts()
        starts = np.asarray(starts, dtype=np.int64)
        jobs = self._jobs(starts)
        if self.n_workers <= 1:
            _init_worker(self.graph, self.params)
            for job in jobs:
                yield _walk_chunk(job)
            return
        ctx = mp.get_context("fork" if os.name == "posix" else "spawn")
        with ctx.Pool(
            self.n_workers,
            initializer=_init_worker,
            initargs=(self.graph, self.params),
        ) as pool:
            # imap preserves submission order → deterministic consumption
            yield from pool.imap(_walk_chunk, jobs)

    def all_walks(self, starts: np.ndarray | None = None) -> list:
        return [w for chunk in self.generate(starts) for w in chunk]


def train_parallel(
    graph: CSRGraph,
    *,
    dim: int = 32,
    model: str = "proposed",
    hyper=None,
    n_workers: int = 0,
    chunk_size: int = 256,
    negative_power: float = 0.75,
    seed: int = 0,
    **model_kwargs,
) -> TrainingResult:
    """Pipelined counterpart of :func:`repro.embedding.train_on_graph`.

    Walk chunks stream out of the worker pool while the main process trains
    on them, mirroring the PS/PL overlap of the board.  The result is
    bit-identical across ``n_workers`` settings (chunk-seeded generation,
    in-order consumption) — and bit-identical to itself run twice.

    Note the negative sampler is built from the first pass's frequencies
    exactly like the sequential trainer: we buffer one full corpus, build
    the sampler, then train — generation still overlaps the (later) walk
    chunks' transport, and determinism is preserved.
    """
    from repro.experiments.hyper import Node2VecParams

    hp = hyper or Node2VecParams()
    rng = as_generator(seed)
    mdl = make_model(model, graph.n_nodes, dim, seed=int(rng.integers(2**62)), **model_kwargs)

    generator = ParallelWalkGenerator(
        graph,
        hp.walk_params(),
        n_workers=n_workers,
        chunk_size=chunk_size,
        seed=int(rng.integers(2**31)),
    )
    walks = generator.all_walks()
    sampler = NegativeSampler.from_walks(
        walks, graph.n_nodes, power=negative_power, seed=int(rng.integers(2**62))
    )
    trainer = WalkTrainer(mdl, window=hp.w, ns=hp.ns)
    trainer.train_corpus(walks, sampler)
    return trainer.result(hyper=hp)
