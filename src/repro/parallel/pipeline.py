"""Parallel walk generation + a genuinely streaming pipelined trainer.

The board's division of labor (§3.2) is a two-stage pipeline: the PS samples
random walks *while* the PL trains on the previous ones.  On a multicore host
the same structure applies: walk sampling is Python/RNG-bound and
embarrassingly parallel across start nodes, while training is NumPy-bound.
This module provides

* :class:`ParallelWalkGenerator` — walk generation fanned out over a
  ``multiprocessing`` pool (fork start method; the CSR arrays are shared
  copy-on-write, so workers carry no pickling cost for the base graph).
  Jobs go out through a consumer-driven bounded prefetch window (submit one
  as one is consumed, FIFO), so at most ``prefetch`` chunks are ever
  buffered ahead of the consumer — peak memory is set by the queue depth,
  not the corpus size.  The engine consumes a stream of
  :class:`~repro.parallel.tasks.WalkTask` items — the static corpus is one
  task; a dynamic-graph replay is many, each tagged with its snapshot
  epoch and carrying its own immutable graph snapshot.
* :func:`train_parallel` — the full pipeline: walk tasks → chunks of start
  nodes → worker walks → in-order training, with the main process training
  chunk *i* while workers generate chunks *i+1 … i+prefetch*.
* :class:`PipelineTelemetry` — per-stage timing (generation / stall /
  train), transport, buffering, snapshot and sampler-rebuild telemetry,
  attached to the ``TrainingResult``.

Walk transport (``transport``)
------------------------------
The board keeps walk traffic on-chip; the host-side analogue of that
bottleneck is the worker→trainer channel:

``"shm"`` (default)
    zero-copy: workers write each chunk into a slot of a fixed-capacity
    shared-memory ring (:class:`repro.parallel.shm_ring.ShmWalkRing`) and
    the trainer reads NumPy views out of it; only a three-int control tuple
    crosses the pickle channel per chunk.  Falls back to pickling
    automatically — per run when the segment cannot be created, per chunk
    when a chunk is ragged beyond the slot shape.
``"pickle"``
    the classic pool result path: every chunk serialized in the worker,
    copied through a pipe, deserialized in the trainer.  O(walks·length)
    bytes of IPC per chunk; kept as the portable fallback and the baseline
    the benchmarks compare against.

Both transports move bit-identical walks, so the trained embedding does not
depend on the transport; ``PipelineTelemetry.ipc_walk_bytes`` records how
many walk-payload bytes actually crossed the pickle channel.

Snapshot transport (task streams)
---------------------------------
Dynamic-replay tasks carry graph snapshots; their chunk jobs hand workers a
tiny reference into the publish-once
:class:`~repro.parallel.snapshots.SnapshotStore` (shared-memory segment,
pickled once per snapshot, deserialized once per worker) instead of
re-pickling the snapshot per job.  ``PipelineTelemetry.ipc_snapshot_bytes``
/ ``ipc_snapshot_bytes_saved`` count the shipped and avoided payload bytes.
Tasks that carry a ``delta`` (the dynamic replay's per-event new-edge
batch) additionally enable the store's **delta transport**: the chain base
publishes in full once, subsequent snapshots ship only O(delta) pickled
edge arrays that workers patch into their cached CSR, and every
``snapshot_rebase_every``-th snapshot re-bases with a fresh full publish
(``ipc_delta_bytes`` / ``delta_applies`` / ``rebase_count`` in the
telemetry; ``snapshot_rebase_every=1`` disables deltas).

Execution backends (``exec_backend``)
-------------------------------------
Consumed chunks train through the kernel layer
(:mod:`repro.embedding.kernels`): ``"reference"`` is the bit-identical
per-walk loop, ``"fused"`` the vectorized chunk kernels (bulk negative
draw + batched per-walk gather/scatter updates), ``"blocked"`` the rank-k
RLS block solves for the OS-ELM family on top of the fused draws, and
``"compiled"`` the reference loops as numba-JIT kernels — bit-identical to
``"reference"`` (same goldens) when numba is installed, a warned fallback
to the reference path otherwise.
``telemetry.exec_backend`` records the kernel that actually ran
(``"compiled[fallback=reference]"`` marks the degraded path);
``telemetry.train_walks_per_s`` / ``train_contexts_per_s`` its realized
training throughput (the context rate is the number the OS-ELM kernels
move, one RLS step per context).

Chunk sizing (``chunk_size``)
-----------------------------
Walk streams are seeded by **global walk index** (walk *j* always draws from
``SeedSequence([seed, 0, j])`` no matter which chunk or task carries it), so
the corpus — and the trained embedding — is invariant to how the start list
is partitioned into chunks.  That makes chunk size a pure performance knob:
pass an int to fix it, or ``chunk_size="auto"`` to let an
:class:`~repro.parallel.chunking.AdaptiveChunkController` rebalance the
stall-vs-IPC-overhead trade-off between epochs from the measured telemetry
(static corpus path only — a task stream's length is unknown up front).

Negative-sampling sources (``negative_source``)
-----------------------------------------------
The paper builds its negative table from node frequencies over the *entire*
walk corpus (§3.1), which fundamentally conflicts with streaming: you cannot
know the final frequencies before the last walk exists.  The strategies for
closing that gap live in :mod:`repro.sampling.sources` as first-class
:class:`~repro.sampling.sources.NegativeSource` objects — ``"corpus"``
(paper-exact, buffers the first epoch), ``"degree"`` (streams immediately),
``"two_pass"`` (paper-exact and memory-bounded, double generation), and the
online ``"decayed"`` (degree bootstrap + exponentially-decayed streaming
frequencies with periodic alias rebuilds, built for dynamic-graph replays).
``negative_source`` accepts a registry name or a pre-constructed instance
(e.g. ``DecayedSource(decay=0.9, rebuild_every=8)``); the valid names are
rendered from :data:`repro.sampling.sources.SOURCE_REGISTRY`.

Determinism: walk *j* derives its stream from (base seed, walk namespace,
global walk index *j*), the start list from a disjoint (base seed, starts
namespace) stream, and results are consumed in order — so the trained
embedding is **bit-identical for any worker count, prefetch depth, chunk
size (fixed or "auto") and transport** under every ``negative_source``.
For ``"decayed"`` the sampler state additionally depends on the canonical
*virtual* chunk schedule, so its bit-identity contract is relaxed to runs
with the same ``virtual_chunk`` — still independent of worker count,
transport and physical chunk size.  The tests pin these invariants down.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from collections import deque
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.config import PipelineConfig
from repro.embedding.base import EmbeddingModel
from repro.embedding.kernels import resolve_backend
from repro.embedding.trainer import TrainingResult, WalkTrainer, make_model
from repro.graph.csr import CSRGraph
from repro.parallel.chunking import (
    DEFAULT_CHUNK_SIZE,
    AdaptiveChunkController,
    EpochStats,
)
from repro.parallel.shm_ring import ShmWalkRing
from repro.parallel.snapshots import (
    DEFAULT_REBASE_EVERY,
    SnapshotStore,
    resolve_snapshot_ref,
)
from repro.parallel.tasks import WalkTask
from repro.sampling.negative import walk_frequencies
from repro.sampling.sources import NEGATIVE_SOURCES, NegativeSource, resolve_source
from repro.sampling.walks import Node2VecWalker, WalkParams
from repro.utils.rng import SeedLike, as_generator, draw_seed
from repro.utils.validation import check_in_set, check_positive

if TYPE_CHECKING:  # annotation-only: the experiments layer stays lazy
    from repro.experiments.hyper import Node2VecParams

__all__ = [
    "NEGATIVE_SOURCES",
    "TRANSPORTS",
    "ParallelWalkGenerator",
    "PipelineTelemetry",
    "WalkTask",
    "train_parallel",
]

#: Valid ``transport`` settings (see module docstring).
TRANSPORTS = ("shm", "pickle")

# Seed namespaces: walk j draws from SeedSequence([seed, _WALK_NS, j]) where
# j is the *global* walk index — chunking-invariant by construction — and
# the start list from SeedSequence([seed, _STARTS_NS]).  The two streams
# live in tuples of different shape *and* different second element, so no
# walk index can ever collide with the start-list stream.
_WALK_NS = 0
_STARTS_NS = 1

# Worker globals, populated by the pool initializer via fork/spawn.  Only
# pool worker processes ever write these; the inline path passes state
# explicitly.
_WORKER_GRAPH: CSRGraph | None = None
_WORKER_PARAMS: WalkParams | None = None
_WORKER_SEED: int | None = None
_WORKER_RING: ShmWalkRing | None = None


def _init_worker(
    graph: CSRGraph, params: WalkParams, seed: int, ring_spec: dict | None
) -> None:
    global _WORKER_GRAPH, _WORKER_PARAMS, _WORKER_SEED, _WORKER_RING
    _WORKER_GRAPH = graph
    _WORKER_PARAMS = params
    _WORKER_SEED = seed
    _WORKER_RING = ShmWalkRing.attach(ring_spec) if ring_spec is not None else None


def _run_chunk(
    graph: CSRGraph, params: WalkParams, starts: np.ndarray, seed: int, lo: int
) -> tuple[list[np.ndarray], float]:
    """Walk one chunk; returns ``(walks, generation_seconds)``.

    ``lo`` is the chunk's global walk offset: walk ``lo + k`` reseeds the
    walker from its own per-walk stream, making the corpus independent of
    how the start list was chunked.
    """
    t0 = time.perf_counter()
    walker = Node2VecWalker(graph, params, seed=0)
    walks = []
    for k, s in enumerate(starts):
        walker.rng = as_generator(np.random.SeedSequence([seed, _WALK_NS, lo + k]))
        walks.append(walker.walk(int(s)))
    return walks, time.perf_counter() - t0


def _walk_chunk_pickle(job: tuple) -> tuple:
    """Pool entry point, pickle transport: the chunk rides the result pipe.
    ``graph_ref`` is ``None`` for the pool's base graph, else a
    :class:`~repro.parallel.snapshots.SnapshotStore` reference (resolved —
    and the snapshot deserialized — at most once per worker per sid)."""
    starts, lo, graph_ref = job
    g = _WORKER_GRAPH if graph_ref is None else resolve_snapshot_ref(graph_ref)
    walks, gen_s = _run_chunk(g, _WORKER_PARAMS, starts, _WORKER_SEED, lo)
    return ("pickle", walks, gen_s)


def _walk_chunk_shm(job: tuple) -> tuple:
    """Pool entry point, shm transport: the chunk lands in a ring slot and
    only a control tuple rides the result pipe.  Chunks ragged beyond the
    slot shape degrade to the pickle payload for that chunk alone."""
    slot, starts, lo, graph_ref = job
    g = _WORKER_GRAPH if graph_ref is None else resolve_snapshot_ref(graph_ref)
    t0 = time.perf_counter()
    walks, _ = _run_chunk(g, _WORKER_PARAMS, starts, _WORKER_SEED, lo)
    if _WORKER_RING is not None and _WORKER_RING.write(slot, walks):
        return ("shm", slot, len(walks), time.perf_counter() - t0)
    return ("pickle", walks, time.perf_counter() - t0)


class _FlowStats:
    """In-flight walk accounting for one generation pass.

    ``peak_in_flight`` is the high-water mark of walks submitted to workers
    but not yet handed to the consumer, i.e. the quantity the bounded
    prefetch window is supposed to cap.  ``ipc_walk_bytes`` counts the walk
    payload bytes that crossed the pickle channel (zero for chunks moved
    through the shm ring).  All hooks run on the consumer thread
    (submission is consumer-driven), so no locking is needed.
    """

    def __init__(self) -> None:
        self.submitted_walks = 0
        self.consumed_walks = 0
        self.peak_in_flight = 0
        self.ipc_walk_bytes = 0
        self.snapshot_bytes = 0
        self.snapshot_bytes_saved = 0
        self.delta_bytes = 0
        self.delta_applies = 0
        self.rebase_count = 0

    def on_submit(self, n: int) -> None:
        self.submitted_walks += n
        in_flight = self.submitted_walks - self.consumed_walks
        if in_flight > self.peak_in_flight:
            self.peak_in_flight = in_flight

    def on_consume(self, n: int) -> None:
        self.consumed_walks += n


@dataclass
class PipelineTelemetry:
    """Per-stage timing + transport telemetry of one :func:`train_parallel`.

    ``generation_s`` sums the worker-side walk time (it may be fully hidden
    behind training); ``wait_s`` is the consumer's observable stall waiting
    for the next chunk; ``train_s`` is time inside the trainer.  A perfect
    pipeline hides all generation: ``wait_s ≈ 0``, ``overlap_efficiency ≈ 1``.

    ``transport`` is the transport the last generation pass actually used
    (``"inline"`` when no worker pool ran, else ``"shm"``/``"pickle"`` after
    any availability fallback); ``ipc_walk_bytes`` the walk payload bytes
    that crossed the pickle channel; ``chunk_sizes`` the per-epoch chunk
    size (one entry per epoch — informative under ``chunk_size="auto"``).

    ``n_chunks`` counts every chunk *consumed*, so per-chunk averages like
    ``generation_s / n_chunks`` stay meaningful for every source — for
    ``"two_pass"`` that includes the counting pass (≈ 2× the trained
    chunks, matching its doubled generation cost).

    Task-stream accounting: ``n_snapshots`` counts the distinct graph
    snapshot epochs consumed (1 for static corpus runs); ``snapshot_stall_s``
    is the share of ``wait_s`` spent waiting for the *first* chunk of each
    new snapshot — the stall attributable to snapshot turnover rather than
    steady-state generation; ``sampler_rebuilds`` counts the alias-table
    rebuilds triggered by the streaming ``negative_source`` (the
    ``"decayed"`` fold/rebuild schedule; 0 for frozen-sampler sources).

    Snapshot transport: ``ipc_snapshot_bytes`` counts the pickled-snapshot
    payload bytes that actually crossed to workers (once per snapshot under
    the publish-once shared-memory store); ``ipc_snapshot_bytes_saved``
    counts the bytes the pre-PR-4 per-job pickling would have sent on top
    of that — the dynamic path's IPC win, sitting next to
    ``ipc_walk_bytes`` so both channels read in the same unit.

    Delta transport: when tasks carry deltas, ``ipc_delta_bytes`` counts
    the O(delta) edge-payload bytes shipped in place of full snapshots,
    ``delta_applies`` the snapshots that shipped as deltas (each is one
    vectorized CSR patch per worker that runs its jobs), and
    ``rebase_count`` the full re-publishes that closed a delta chain (the
    ``snapshot_rebase_every`` knob).  On a high-rate replay
    ``ipc_snapshot_bytes`` then scales with the number of *re-bases* while
    ``ipc_delta_bytes`` scales with the number of *edges* — O(delta) per
    event.

    Execution: ``exec_backend`` is the chunk-kernel the trainer ran
    (:data:`repro.embedding.kernels.EXEC_REGISTRY` name);
    ``train_walks`` / ``train_contexts`` the walks and sliding-window
    contexts trained, so ``train_walks_per_s`` and ``train_contexts_per_s``
    are the consumer-side training throughput the kernel benchmarks track
    (contexts/s is the RLS-step rate the ``"blocked"`` OS-ELM kernel is
    built to lift).

    Store publishing (``store=``): ``store_publishes`` counts the epoch
    versions published into the serving store; ``store_publish_s`` the
    wall-clock spent on the publish path (including any fallback table
    copy); ``store_publish_bytes`` the shard bytes actually (re)written
    (unchanged shards are shared by reference, so this is the incremental
    cost, not ``publishes × table``); ``store_full_copies`` how many
    publishes had to materialize a full-table copy because the model
    exposes no :meth:`~repro.embedding.base.EmbeddingModel.embedding_view`
    — 0 is the zero-copy contract the acceptance tests pin.
    """

    negative_source: str
    n_workers: int
    epochs: int
    n_chunks: int = 0
    generation_s: float = 0.0
    wait_s: float = 0.0
    train_s: float = 0.0
    total_s: float = 0.0
    peak_buffered_walks: int = 0
    transport: str = ""
    ipc_walk_bytes: int = 0
    chunk_sizes: list[int] = field(default_factory=list)
    sampler_rebuilds: int = 0
    n_snapshots: int = 0
    snapshot_stall_s: float = 0.0
    ipc_snapshot_bytes: int = 0
    ipc_snapshot_bytes_saved: int = 0
    ipc_delta_bytes: int = 0
    delta_applies: int = 0
    rebase_count: int = 0
    exec_backend: str = ""
    train_walks: int = 0
    train_contexts: int = 0
    store_publishes: int = 0
    store_publish_s: float = 0.0
    store_publish_bytes: int = 0
    store_full_copies: int = 0

    @property
    def overlap_efficiency(self) -> float:
        """Fraction of generation cost hidden behind training, in [0, 1]."""
        if self.generation_s <= 0.0:
            return 1.0
        return max(0.0, min(1.0, 1.0 - self.wait_s / self.generation_s))

    @property
    def train_walks_per_s(self) -> float:
        """Training throughput (walks consumed per second inside the
        trainer; 0.0 before any timed training)."""
        if self.train_s <= 0.0:
            return 0.0
        return self.train_walks / self.train_s

    @property
    def train_contexts_per_s(self) -> float:
        """Training throughput in sliding-window contexts per second (one
        RLS step per context for the OS-ELM family; 0.0 before any timed
        training)."""
        if self.train_s <= 0.0:
            return 0.0
        return self.train_contexts / self.train_s


class ParallelWalkGenerator:
    """Chunked, seeded, optionally multiprocess walk generation over a
    stream of :class:`~repro.parallel.tasks.WalkTask` items.

    Parameters
    ----------
    graph, params:
        the base graph (walked when a task carries no snapshot) and how to
        walk it.
    n_workers:
        0 or 1 → inline generation (no processes); ≥2 → a fork pool.
    chunk_size:
        start nodes per work item; larger chunks amortize per-chunk
        overhead, smaller chunks pipeline better.  Chunking never changes
        the walks themselves (per-walk seeding), only the schedule.
    seed:
        base seed; walk ``j`` (global index across the whole task stream)
        uses ``SeedSequence([seed, 0, j])`` and the start list
        ``SeedSequence([seed, 1])`` — disjoint namespaces, so the streams
        can never collide for any walk index.
    prefetch:
        maximum chunks in flight ahead of the consumer (default
        ``max(2, 2 * n_workers)``).  Bounds peak buffered walks at
        ``prefetch * chunk_size`` regardless of corpus size — and bounds
        how many task snapshots are alive at once on the dynamic path.
    transport:
        ``"shm"`` (default) — chunks travel through a shared-memory ring,
        zero-copy; ``"pickle"`` — chunks ride the pool's result pipe.
        Ignored on the inline path (no IPC).  ``effective_transport``
        records what the last pass actually used after fallback.
    snapshot_rebase_every:
        delta-chain length limit for the snapshot transport: when tasks
        carry deltas, one snapshot in ``snapshot_rebase_every`` publishes
        in full and the rest ship as O(delta) edge payloads.  ``1``
        disables deltas (every snapshot full); ignored for delta-free
        streams and on the inline path.
    """

    def __init__(
        self,
        graph: CSRGraph,
        params: WalkParams | None = None,
        *,
        n_workers: int = 0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        seed: int = 0,
        prefetch: int | None = None,
        transport: str = "shm",
        snapshot_rebase_every: int = DEFAULT_REBASE_EVERY,
    ):
        check_positive("chunk_size", chunk_size, integer=True)
        check_in_set("transport", transport, TRANSPORTS)
        check_positive("snapshot_rebase_every", snapshot_rebase_every, integer=True)
        if n_workers < 0:
            raise ValueError("n_workers must be >= 0")
        if prefetch is None:
            prefetch = max(2, 2 * int(n_workers))
        check_positive("prefetch", prefetch, integer=True)
        self.graph = graph
        self.params = params or WalkParams()
        self.n_workers = int(n_workers)
        self.chunk_size = int(chunk_size)
        self.seed = int(seed)
        self.prefetch = int(prefetch)
        self.transport = transport
        self.snapshot_rebase_every = int(snapshot_rebase_every)
        #: transport the most recent pass actually used
        #: ("inline" | "shm" | "pickle"; None before the first pass)
        self.effective_transport: str | None = None
        #: flow accounting of the most recent generation pass
        self.last_stats = _FlowStats()

    # ------------------------------------------------------------------ #
    # Seeding
    # ------------------------------------------------------------------ #

    def walk_seed(self, j: int) -> np.random.SeedSequence:
        """The stream of global walk ``j`` — independent of chunking."""
        return np.random.SeedSequence([self.seed, _WALK_NS, int(j)])

    def starts_seed(self) -> np.random.SeedSequence:
        """The start-list shuffle stream (disjoint from every walk)."""
        return np.random.SeedSequence([self.seed, _STARTS_NS])

    def _job_stream(self, tasks: Iterable[WalkTask]) -> Iterator[tuple]:
        """``(chunk_starts, global_walk_offset, epoch, graph, sid, delta)``
        work items, in deterministic order.  The global offset runs across
        every task, so walk seeds never depend on task or chunk boundaries;
        chunks never span tasks (each chunk walks exactly one snapshot).
        ``sid`` is the task's snapshot id (``None`` for base-graph tasks) —
        monotonically increasing in submission order, which is what the
        publish-once snapshot transport's retire/evict protocol rests on.
        ``delta`` is the task's optional new-edge batch, handed to the
        store so it can ship O(delta) bytes instead of the snapshot."""
        lo = 0
        sid = 0
        for task in tasks:
            if task.graph is not None and task.graph.n_nodes != self.graph.n_nodes:
                raise ValueError(
                    f"task snapshot has {task.graph.n_nodes} nodes but the "
                    f"engine's base graph has {self.graph.n_nodes}: snapshots "
                    "must share the base graph's node universe"
                )
            task_sid = None
            if task.graph is not None:
                task_sid = sid
                sid += 1
            starts = task.starts
            for off in range(0, starts.shape[0], self.chunk_size):
                yield (
                    starts[off : off + self.chunk_size],
                    lo + off,
                    task.epoch,
                    task.graph,
                    task_sid,
                    task.delta,
                )
            lo += starts.shape[0]

    def corpus_starts(self) -> np.ndarray:
        """The r-walks-per-node start list (shuffled per repetition, matching
        :meth:`Node2VecWalker.simulate`)."""
        rng = as_generator(self.starts_seed())
        n = self.graph.n_nodes
        reps = [rng.permutation(n) for _ in range(self.params.walks_per_node)]
        return np.concatenate(reps)

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #

    def stream_timed(
        self, tasks: Iterable[WalkTask] | None = None
    ) -> Iterator[tuple[list[np.ndarray], float, int]]:
        """Yield ``(walk_chunk, generation_seconds, snapshot_epoch)`` in
        deterministic chunk order, keeping at most ``prefetch`` chunks in
        flight.

        ``tasks`` is any (possibly lazy) iterable of
        :class:`~repro.parallel.tasks.WalkTask`; ``None`` means the single
        static-corpus task on the base graph.  The task iterator advances
        only as jobs are submitted, so a lazy dynamic-replay stream is
        never materialized more than ``prefetch`` chunks ahead — which also
        bounds how many graph snapshots are alive at once.

        The prefetch window is driven entirely from the consumer side: jobs
        are submitted with ``apply_async`` and consumed FIFO, one fresh
        submission per consumed chunk.  Workers therefore never run more
        than ``prefetch`` chunks ahead — the property the streaming
        trainer's memory bound rests on — and no pool-internal thread ever
        blocks on caller state (throttling the lazy ``imap`` job feed
        instead can strand the pool's task-handler thread at shutdown,
        which ``Pool.terminate`` then joins forever).  ``self.last_stats``
        records the realized high-water mark.

        Under the shm transport the yielded walk arrays are *views* into a
        ring slot, valid only until the next chunk is requested; consume
        them before advancing the iterator, or copy (this is what makes
        the transport zero-copy on the streaming train path).  The ring
        carries ``prefetch + 1`` slots so a fresh job can be dispatched
        while the consumer still reads the chunk just handed over.
        """
        if tasks is None:
            tasks = [WalkTask(starts=self.corpus_starts())]
        job_iter = self._job_stream(tasks)
        stats = self.last_stats = _FlowStats()

        if self.n_workers <= 1:
            self.effective_transport = "inline"
            for chunk_starts, lo, epoch, task_graph, _sid, _delta in job_iter:
                stats.on_submit(len(chunk_starts))
                walks, gen_s = _run_chunk(
                    task_graph if task_graph is not None else self.graph,
                    self.params,
                    chunk_starts,
                    self.seed,
                    lo,
                )
                stats.on_consume(len(walks))
                yield walks, gen_s, epoch
            return

        ring: ShmWalkRing | None = None
        transport = self.transport
        if transport == "shm":
            try:
                # one slot more than the window: a new job is dispatched
                # while the consumer still holds views of the chunk it was
                # just handed, so full prefetch depth stays in flight
                ring = ShmWalkRing.create(
                    self.prefetch + 1, self.chunk_size, self.params.length
                )
            except Exception:  # no /dev/shm, size limits, … → portable path
                ring = None
                transport = "pickle"
        self.effective_transport = transport

        ctx = mp.get_context("fork" if os.name == "posix" else "spawn")
        store = SnapshotStore(rebase_every=self.snapshot_rebase_every)
        try:
            with ctx.Pool(
                self.n_workers,
                initializer=_init_worker,
                initargs=(
                    self.graph,
                    self.params,
                    self.seed,
                    ring.spec if ring is not None else None,
                ),
            ) as pool:
                pending: deque = deque()
                free_slots: deque = deque(range(ring.n_slots)) if ring else deque()

                def _submit_next() -> None:
                    job = next(job_iter, None)
                    if job is None:
                        return
                    chunk_starts, lo, epoch, task_graph, sid, delta = job
                    stats.on_submit(len(chunk_starts))
                    # publish-once snapshot transport: the job carries a
                    # tiny reference, not the pickled graph, after the
                    # snapshot's first chunk — and only an O(delta) edge
                    # payload when the task's delta can extend a live chain
                    graph_ref = (
                        store.ref_for(sid, task_graph, delta)
                        if sid is not None
                        else None
                    )
                    if ring is not None:
                        slot = free_slots.popleft()
                        pending.append(
                            (slot, epoch, sid, pool.apply_async(
                                _walk_chunk_shm,
                                ((slot, chunk_starts, lo, graph_ref),),
                            ))
                        )
                    else:
                        pending.append(
                            (None, epoch, sid, pool.apply_async(
                                _walk_chunk_pickle,
                                ((chunk_starts, lo, graph_ref),),
                            ))
                        )

                for _ in range(self.prefetch):
                    _submit_next()
                # FIFO consumption of the submission order → deterministic
                while pending:
                    slot, epoch, sid, fut = pending.popleft()
                    result = fut.get()
                    if sid is not None:
                        # FIFO: a result for sid proves every job of any
                        # lower sid completed → its segment can go
                        store.retire_below(sid)
                    if result[0] == "shm":
                        _, slot_idx, _count, gen_s = result
                        walks = ring.read(slot_idx)
                        stats.on_consume(len(walks))
                        _submit_next()
                        yield walks, gen_s, epoch
                        # consumer is done with the slot's views: recycle,
                        # and drop our own frame's view ref so the ring can
                        # unmap cleanly at shutdown
                        free_slots.append(slot_idx)
                        walks = None
                    else:
                        _, walks, gen_s = result
                        stats.on_consume(len(walks))
                        stats.ipc_walk_bytes += sum(w.nbytes for w in walks)
                        if slot is not None:  # ragged fallback: slot unused
                            free_slots.append(slot)
                        _submit_next()
                        yield walks, gen_s, epoch
        finally:
            stats.snapshot_bytes = store.bytes_shipped
            stats.snapshot_bytes_saved = store.bytes_saved
            stats.delta_bytes = store.delta_bytes_shipped
            stats.delta_applies = store.delta_refs
            stats.rebase_count = store.rebase_count
            store.close()
            if ring is not None:
                ring.close()
                ring.unlink()

    def generate_timed(
        self, starts: np.ndarray | None = None
    ) -> Iterator[tuple[list[np.ndarray], float]]:
        """Yield ``(walk_chunk, generation_seconds)`` for the static-corpus
        task (``starts=None`` → the r-walks-per-node start list).  Shm
        chunks are slot views with the lifetime contract of
        :meth:`stream_timed`."""
        tasks = None if starts is None else [WalkTask(starts=starts)]
        for walks, gen_s, _ in self.stream_timed(tasks):
            yield walks, gen_s

    def generate(self, starts: np.ndarray | None = None) -> Iterator[list[np.ndarray]]:
        """Yield walk chunks in deterministic chunk order (timing stripped).

        Shm-transport chunks are views with the same lifetime contract as
        :meth:`stream_timed`."""
        for walks, _ in self.generate_timed(starts):
            yield walks

    def all_walks(self, starts: np.ndarray | None = None) -> list[np.ndarray]:
        """The whole corpus as a list (chunks materialized, safe to keep)."""
        out: list[np.ndarray] = []
        for chunk in self.generate(starts):
            if self.effective_transport == "shm":
                out.extend(w.copy() for w in chunk)
            else:
                out.extend(chunk)
        return out


def _virtual_segments(
    walks: list[np.ndarray], size: int, consumed: int
) -> Iterator[list[np.ndarray]]:
    """Split one physical chunk so every yielded segment ends on a canonical
    virtual-chunk boundary (a multiple of ``size`` in global consumed-walk
    order) or at the chunk's end.  This is what pins the ``"decayed"``
    fold/rebuild schedule to the virtual chunking instead of the physical
    one: the segment sequence — and hence the sampler state seen by every
    walk — is identical for any physical ``chunk_size``."""
    i, n = 0, len(walks)
    while i < n:
        room = size - (consumed + i) % size
        yield walks[i : i + room]
        i += room


def train_parallel(
    graph: CSRGraph,
    *,
    dim: int = 32,
    model: str | EmbeddingModel = "proposed",
    hyper: Node2VecParams | None = None,
    epochs: int = 1,
    n_workers: int | None = None,
    chunk_size: int | str | None = None,
    prefetch: int | None = None,
    transport: str | None = None,
    negative_source: str | NegativeSource | None = None,
    negative_power: float | None = None,
    exec_backend: str | None = None,
    snapshot_rebase_every: int | None = None,
    config: PipelineConfig | None = None,
    store: Any | None = None,
    publish_every: int = 1,
    tasks: Iterable[WalkTask] | Callable[[], Iterable[WalkTask]] | None = None,
    seed: SeedLike = 0,
    **model_kwargs: Any,
) -> TrainingResult:
    """Streaming pipelined counterpart of :func:`repro.embedding.train_on_graph`.

    Walk chunks stream out of the worker pool through a bounded prefetch
    window while the main process trains on them — chunk *i* trains while
    workers generate chunks *i+1 … i+prefetch*, mirroring the PS/PL overlap
    of the board.  Chunks move through the ``transport`` of choice
    (``"shm"`` zero-copy ring, default, falling back to ``"pickle"`` when
    shared memory is unavailable or a chunk outgrows its slot).

    How soon training can start — and how the sampler tracks the stream —
    is governed by ``negative_source``: a name from
    :data:`repro.sampling.sources.SOURCE_REGISTRY` or a pre-constructed
    :class:`~repro.sampling.sources.NegativeSource` (see that module for
    the trade-offs).  ``"corpus"`` buffers the first epoch (paper-exact),
    ``"two_pass"`` streams a counting pass first (paper-exact, bounded
    memory), ``"degree"`` and ``"decayed"`` stream from the first chunk —
    ``"decayed"`` additionally folds each consumed virtual chunk's
    :func:`~repro.sampling.negative.walk_frequencies` into an
    exponentially-decayed count vector and rebuilds its alias table every
    K folds (counted in ``telemetry.sampler_rebuilds``).

    ``tasks`` switches the engine from the static corpus to a stream of
    :class:`~repro.parallel.tasks.WalkTask` items (the dynamic-graph
    replay): pass an iterable, or a zero-argument callable returning one —
    required for ``"two_pass"``, which must stream the tasks twice, and
    handy whenever the stream is a lazy generator.  Task streams are
    single-pass by nature, so ``epochs`` must be 1 and ``chunk_size="auto"``
    is unavailable (the controller sizes itself from the corpus length).

    ``chunk_size`` may be a fixed int or ``"auto"``, which lets an
    :class:`~repro.parallel.chunking.AdaptiveChunkController` pick the
    initial size from the workload shape and re-balance it between epochs
    from the measured stall fraction.  Because walks are seeded by global
    walk index, the result is bit-identical across ``n_workers``,
    ``prefetch``, ``transport`` and ``chunk_size`` (fixed or ``"auto"``)
    settings for every ``negative_source`` — and bit-identical to itself
    run twice.  (``"decayed"`` keeps all of that but additionally pins its
    fold/rebuild schedule to its canonical ``virtual_chunk``, so only runs
    sharing that value agree.)  Seeds derive from the same 63-bit stream as
    the sequential trainer (:func:`repro.utils.rng.draw_seed`).

    ``exec_backend`` selects the chunk-execution kernel
    (:data:`repro.embedding.kernels.EXEC_REGISTRY`): ``"reference"`` is the
    bit-identical historical per-walk loop; ``"fused"`` runs the vectorized
    chunk kernels (bulk negative draw + batched gather/scatter updates) for
    a large walks/s win at a documented tolerance; ``"blocked"`` adds the
    rank-k RLS block solves that lift the OS-ELM ``"proposed"`` model
    (documented ``BLOCKED_RTOL`` staleness).  Because ``"fused"`` and
    ``"blocked"`` draw each chunk's negatives in one bulk pass, their
    negative stream is pinned to the chunk schedule: results stay
    bit-identical across ``n_workers``, ``prefetch`` and ``transport``,
    but — like ``"decayed"``'s virtual-chunk contract — change with
    ``chunk_size`` (which is also why both reject ``chunk_size="auto"``).
    ``None`` follows the model's own :attr:`~repro.embedding.base.EmbeddingModel.exec_backend`
    preference (``"reference"`` unless a checkpoint says otherwise).

    ``snapshot_rebase_every`` tunes the dynamic path's delta transport:
    when the task stream carries per-event deltas (as
    :meth:`~repro.graph.dynamic.DynamicGraph.walk_tasks` streams do), one
    snapshot in ``snapshot_rebase_every`` publishes in full and the rest
    ship as O(delta) edge payloads that workers patch into their cached
    CSR — bit-identical embeddings, O(delta) IPC per event.  ``1``
    disables deltas; ``None`` (default) uses
    :data:`repro.parallel.snapshots.DEFAULT_REBASE_EVERY`.  No effect on
    delta-free streams, the static corpus, or the inline path.

    ``config`` accepts a frozen :class:`repro.config.PipelineConfig`
    bundling the execution knobs above; an explicitly passed kwarg
    overrides the corresponding config field (a *conflicting* duplicate
    warns ``DeprecationWarning``; equal duplicates are silent).

    ``store`` hooks the run up to the serving layer: pass a
    :data:`repro.store.STORE_REGISTRY` name or a live
    :class:`~repro.store.base.EmbeddingStore` and the pipeline publishes
    versioned epoch snapshots into it as training proceeds — one version
    per training epoch on the static path, one per task-epoch transition
    on the dynamic path (thinned by ``publish_every``; the final epoch
    always publishes).  Publishes read the model through its zero-copy
    :meth:`~repro.embedding.base.EmbeddingModel.embedding_view` and write
    only the shards that changed, so a live run ships no full-table
    copies (``telemetry.store_full_copies`` pins this; the per-publish
    accounting lands in the ``store_*`` telemetry fields).  The store
    rides out on ``TrainingResult.store`` — the caller owns it (serve
    from it, then ``close()`` it), and readers pinned to an epoch see
    bit-identical vectors while training publishes behind them.

    Returns a :class:`TrainingResult` whose ``telemetry`` field carries the
    per-stage :class:`PipelineTelemetry`.
    """
    from repro.experiments.hyper import Node2VecParams

    knobs = (config or PipelineConfig()).merged(
        n_workers=n_workers,
        transport=transport,
        chunk_size=chunk_size,
        prefetch=prefetch,
        exec_backend=exec_backend,
        negative_source=negative_source,
        negative_power=negative_power,
        snapshot_rebase_every=snapshot_rebase_every,
    )
    n_workers = knobs["n_workers"] if knobs["n_workers"] is not None else 0
    chunk_size = (
        knobs["chunk_size"] if knobs["chunk_size"] is not None else DEFAULT_CHUNK_SIZE
    )
    prefetch = knobs["prefetch"]
    transport = knobs["transport"] if knobs["transport"] is not None else "shm"
    negative_source = (
        knobs["negative_source"] if knobs["negative_source"] is not None else "corpus"
    )
    negative_power = (
        knobs["negative_power"] if knobs["negative_power"] is not None else 0.75
    )
    exec_backend = knobs["exec_backend"]
    rebase_every = (
        knobs["snapshot_rebase_every"]
        if knobs["snapshot_rebase_every"] is not None
        else DEFAULT_REBASE_EVERY
    )

    check_positive("epochs", epochs, integer=True)
    check_in_set("transport", transport, TRANSPORTS)
    source = resolve_source(negative_source)
    if tasks is not None:
        if epochs != 1:
            raise ValueError(
                "a task stream is single-pass: epochs must be 1 when tasks is given"
            )
        if source.bootstrap_mode == "count" and not callable(tasks):
            raise ValueError(
                'negative_source="two_pass" must stream the tasks twice: pass a '
                "zero-argument callable returning a fresh task iterable"
            )
    hp = hyper or Node2VecParams()
    rng = as_generator(seed)

    controller: AdaptiveChunkController | None = None
    if isinstance(chunk_size, str):
        check_in_set("chunk_size", chunk_size, ("auto",))
        if tasks is not None:
            raise ValueError(
                'chunk_size="auto" needs the static corpus path; task streams '
                "have no known length to size against"
            )
        controller = AdaptiveChunkController(
            n_walks=hp.walk_params().walks_per_node * graph.n_nodes,
            n_workers=int(n_workers),
        )
    else:
        check_positive("chunk_size", chunk_size, integer=True)

    if isinstance(model, str):
        mdl = make_model(model, graph.n_nodes, dim, seed=draw_seed(rng), **model_kwargs)
    elif model_kwargs:
        raise ValueError("model_kwargs only apply when model is a registry name")
    else:
        mdl = model

    emb_store = None
    if store is not None:
        check_positive("publish_every", publish_every, integer=True)
        # lazy: repro.store pulls the shm backend, which imports this package
        from repro.store import resolve_store

        emb_store = resolve_store(store, mdl.n_nodes, mdl.dim)

    # Draw every seed up front, independent of negative_source, so that
    # "corpus" and "two_pass" (same sampler distribution, same walk order)
    # consume identical streams and stay bit-identical to each other.
    sampler_seed = draw_seed(rng)
    epoch_seeds = [draw_seed(rng) for _ in range(epochs)]

    source.configure(power=negative_power, seed=sampler_seed)
    source.bootstrap(graph)

    def _generator(epoch: int, cs: int) -> ParallelWalkGenerator:
        return ParallelWalkGenerator(
            graph,
            hp.walk_params(),
            n_workers=n_workers,
            chunk_size=cs,
            seed=epoch_seeds[epoch],
            prefetch=prefetch,
            transport=transport,
            snapshot_rebase_every=rebase_every,
        )

    def _task_stream():
        if tasks is None:
            return None  # the generator's static corpus task
        return tasks() if callable(tasks) else tasks

    # validate the backend/chunking combination BEFORE WalkTrainer records
    # the backend as the model preference — a rejected call must not leave
    # a mutated (and checkpointable) preference on the caller's model
    backend = resolve_backend(mdl.exec_backend if exec_backend is None else exec_backend)
    if controller is not None and not backend.chunk_invariant:
        raise ValueError(
            f'exec_backend="{backend.name}" pins results to the chunk '
            'schedule (one bulk negative draw per chunk), but chunk_size="auto" '
            "derives its schedule from worker count and wall-clock timing — "
            "the combination would make the embedding irreproducible.  Fix "
            "chunk_size to an int, or use a chunk-invariant backend."
        )
    trainer = WalkTrainer(mdl, window=hp.w, ns=hp.ns, exec_backend=exec_backend)
    tele = PipelineTelemetry(
        negative_source=source.name,
        n_workers=int(n_workers),
        epochs=int(epochs),
        # telemetry_name, not name: a degraded backend ("compiled" without
        # numba) reports what actually ran, e.g. "compiled[fallback=reference]"
        exec_backend=trainer.backend.telemetry_name,
    )
    t_total = time.perf_counter()

    seen_epochs: set[int] = set()
    consumed_walks = [0]  # global counter pinning the virtual-chunk schedule
    last_published = [None]  # dedup guard: a version publishes exactly once
    last_task_epoch: list[int | None] = [None]

    def _publish(version: int) -> None:
        """Publish the model's current table as ``version`` (idempotent per
        version).  Zero-copy: the table is read through ``embedding_view``
        and only changed shards are written; a model without a view falls
        back to ``.embedding`` and the copy is counted in the telemetry."""
        if emb_store is None or last_published[0] == version:
            return
        t0 = time.perf_counter()
        view = mdl.embedding_view()
        full = view is None
        stats = emb_store.publish(
            version, mdl.embedding if full else view, full_copy=full
        )
        last_published[0] = version
        tele.store_publishes += 1
        tele.store_publish_s += time.perf_counter() - t0
        tele.store_publish_bytes += stats.bytes_written
        tele.store_full_copies += stats.full_table_copies

    def _consume(gen: ParallelWalkGenerator, stream, on_chunk) -> None:
        """Drain one generation pass, folding stall/generation times, the
        chunk count, snapshot accounting, transport and the buffering
        high-water mark into the telemetry.

        Snapshot-stall attribution is per *pass* (a two_pass training pass
        re-crosses every snapshot boundary its counting pass already saw
        and pays the turnover stall again); ``n_snapshots`` counts distinct
        epochs across the whole run."""
        pass_seen: set[int] = set()
        t_wait = time.perf_counter()
        for walks, gen_s, epoch in gen.stream_timed(stream):
            stalled = time.perf_counter() - t_wait
            tele.wait_s += stalled
            if epoch not in pass_seen:
                pass_seen.add(epoch)
                tele.snapshot_stall_s += stalled
                if epoch not in seen_epochs:
                    seen_epochs.add(epoch)
                    tele.n_snapshots = len(seen_epochs)
            tele.generation_s += gen_s
            tele.n_chunks += 1
            on_chunk(walks, epoch)
            t_wait = time.perf_counter()
        tele.peak_buffered_walks = max(
            tele.peak_buffered_walks, gen.last_stats.peak_in_flight
        )
        tele.ipc_walk_bytes += gen.last_stats.ipc_walk_bytes
        tele.ipc_snapshot_bytes += gen.last_stats.snapshot_bytes
        tele.ipc_snapshot_bytes_saved += gen.last_stats.snapshot_bytes_saved
        tele.ipc_delta_bytes += gen.last_stats.delta_bytes
        tele.delta_applies += gen.last_stats.delta_applies
        tele.rebase_count += gen.last_stats.rebase_count
        tele.transport = gen.effective_transport

    def _train_chunk(walks: list, epoch: int | None = None) -> None:
        """Train one consumed chunk, threading its walk frequencies back to
        the source.  For a source with a virtual-chunk schedule the chunk
        is split at canonical boundaries so the fold/rebuild points — and
        therefore the sampler every walk trains against — are independent
        of the physical chunking.

        On the dynamic path (task streams) this is also the publish point:
        the first chunk of a *new* task epoch proves the previous epoch's
        training is complete (FIFO chunk order), so the previous epoch's
        table publishes before the new epoch's first update lands."""
        if emb_store is not None and tasks is not None and epoch is not None:
            prev = last_task_epoch[0]
            if prev is not None and epoch > prev and (prev + 1) % publish_every == 0:
                _publish(prev)
            last_task_epoch[0] = epoch if prev is None else max(prev, epoch)
        if source.wants_frequencies:
            segments = (
                _virtual_segments(walks, source.virtual_chunk, consumed_walks[0])
                if source.virtual_chunk
                else (walks,)
            )
            for seg in segments:
                t0 = time.perf_counter()
                trainer.train_corpus(seg, source.sampler())
                tele.train_s += time.perf_counter() - t0
                consumed_walks[0] += len(seg)
                tele.sampler_rebuilds += source.observe(
                    walk_frequencies(seg, graph.n_nodes), len(seg)
                )
        else:
            t0 = time.perf_counter()
            trainer.train_corpus(walks, source.sampler())
            tele.train_s += time.perf_counter() - t0
            consumed_walks[0] += len(walks)

    def _count_chunk(walks: list, epoch: int | None = None) -> None:
        source.observe(walk_frequencies(walks, graph.n_nodes), len(walks))

    for epoch in range(epochs):
        cs = controller.next_chunk_size() if controller else int(chunk_size)
        tele.chunk_sizes.append(cs)
        t_epoch = time.perf_counter()
        before = (tele.n_chunks, tele.generation_s, tele.wait_s, tele.train_s)
        # corpus buffering / two_pass counting stall by construction (no
        # training runs behind them), so their epochs carry no chunk-size
        # signal and must not steer the controller
        pending = source.pending_bootstrap
        bootstrap_epoch = pending is not None

        gen = _generator(epoch, cs)
        if pending == "buffer":
            # buffer-then-train: the paper's exact first-epoch semantics.
            # shm chunks are slot views that die on slot reuse, so buffering
            # (the one path that retains walks) must materialize them.
            buffered: list = []

            def _buffer_chunk(
                walks: list, epoch: int | None = None, _buf=buffered, _gen=gen
            ) -> None:
                if _gen.effective_transport == "shm":
                    _buf.extend(w.copy() for w in walks)
                else:
                    _buf.extend(walks)
                _count_chunk(walks)

            _consume(gen, _task_stream(), _buffer_chunk)
            tele.peak_buffered_walks = max(tele.peak_buffered_walks, len(buffered))
            source.finalize()
            _train_chunk(buffered)
        else:
            if pending == "count":
                # counting pass: same seed → the identical corpus, walks
                # discarded right after counting
                _consume(_generator(epoch, cs), _task_stream(), _count_chunk)
                source.finalize()
            _consume(gen, _task_stream(), _train_chunk)

        # static-path publishing: the training-epoch index is the version
        # (task streams version by task epoch inside _train_chunk instead)
        if (
            emb_store is not None
            and tasks is None
            and ((epoch + 1) % publish_every == 0 or epoch == epochs - 1)
        ):
            _publish(epoch)

        if controller is not None and not bootstrap_epoch:
            controller.observe(
                EpochStats(
                    chunk_size=cs,
                    n_chunks=tele.n_chunks - before[0],
                    generation_s=tele.generation_s - before[1],
                    wait_s=tele.wait_s - before[2],
                    train_s=tele.train_s - before[3],
                    elapsed_s=time.perf_counter() - t_epoch,
                )
            )

    # dynamic-path final publish: the last task epoch has no successor to
    # trigger its transition publish, so it always publishes here (also the
    # sole publish of bootstrap-buffered task runs, which train all at once)
    if emb_store is not None and tasks is not None and seen_epochs:
        _publish(max(seen_epochs))

    tele.total_s = time.perf_counter() - t_total
    tele.train_walks = trainer.n_walks
    tele.train_contexts = trainer.n_contexts
    return trainer.result(hyper=hp, telemetry=tele, store=emb_store)
