"""Parallel walk generation + a genuinely streaming pipelined trainer.

The board's division of labor (§3.2) is a two-stage pipeline: the PS samples
random walks *while* the PL trains on the previous ones.  On a multicore host
the same structure applies: walk sampling is Python/RNG-bound and
embarrassingly parallel across start nodes, while training is NumPy-bound.
This module provides

* :class:`ParallelWalkGenerator` — walk corpus generation fanned out over a
  ``multiprocessing`` pool (fork start method; the CSR arrays are shared
  copy-on-write, so workers carry no pickling cost for the graph).  Jobs
  go out through a consumer-driven bounded prefetch window (submit one as
  one is consumed, FIFO), so at most ``prefetch`` chunks are ever buffered
  ahead of the consumer — peak memory is set by the queue depth, not the
  corpus size.
* :func:`train_parallel` — the full pipeline: chunks of start nodes →
  worker walks → in-order training, with the main process training chunk
  *i* while workers generate chunks *i+1 … i+prefetch*.
* :class:`PipelineTelemetry` — per-stage timing (generation / stall / train),
  transport and buffering telemetry, attached to the ``TrainingResult``.

Walk transport (``transport``)
------------------------------
The board keeps walk traffic on-chip; the host-side analogue of that
bottleneck is the worker→trainer channel:

``"shm"`` (default)
    zero-copy: workers write each chunk into a slot of a fixed-capacity
    shared-memory ring (:class:`repro.parallel.shm_ring.ShmWalkRing`) and
    the trainer reads NumPy views out of it; only a three-int control tuple
    crosses the pickle channel per chunk.  Falls back to pickling
    automatically — per run when the segment cannot be created, per chunk
    when a chunk is ragged beyond the slot shape.
``"pickle"``
    the classic pool result path: every chunk serialized in the worker,
    copied through a pipe, deserialized in the trainer.  O(walks·length)
    bytes of IPC per chunk; kept as the portable fallback and the baseline
    the benchmarks compare against.

Both transports move bit-identical walks, so the trained embedding does not
depend on the transport; ``PipelineTelemetry.ipc_walk_bytes`` records how
many walk-payload bytes actually crossed the pickle channel.

Chunk sizing (``chunk_size``)
-----------------------------
Walk streams are seeded by **global walk index** (walk *j* always draws from
``SeedSequence([seed, 0, j])`` no matter which chunk carries it), so the
corpus — and the trained embedding — is invariant to how the start list is
partitioned into chunks.  That makes chunk size a pure performance knob:
pass an int to fix it, or ``chunk_size="auto"`` to let an
:class:`~repro.parallel.chunking.AdaptiveChunkController` rebalance the
stall-vs-IPC-overhead trade-off between epochs from the measured telemetry.

Negative-sampling sources (``negative_source``)
-----------------------------------------------
The paper builds its negative table from node frequencies over the *entire*
walk corpus (§3.1), which fundamentally conflicts with streaming: you cannot
know the final frequencies before the last walk exists.  Three strategies
trade fidelity against memory and overlap:

``"corpus"`` (default)
    The paper's construction, verbatim: buffer the whole first-epoch corpus,
    count frequencies, build the sampler, then train.  Exact semantics, but
    peak memory is O(corpus) and no walk/train overlap happens during the
    first epoch (later epochs stream).
``"degree"``
    Bootstrap the table from node degrees (:meth:`NegativeSampler.from_degrees`)
    — the stationary visit distribution of an unbiased walk, a close proxy
    for corpus frequency.  Training starts on the very first chunk, memory
    stays bounded by the prefetch window, overlap is maximal.  The sampling
    distribution differs slightly from the paper's.
``"two_pass"``
    A cheap counting pass streams the corpus once (walks discarded after
    counting), builds the exact corpus-frequency sampler, then a second
    identically-seeded pass streams the same walks into training.  Exact
    semantics *and* bounded memory, at the price of generating the corpus
    twice — bit-identical to ``"corpus"``.

Determinism: walk *j* derives its stream from (base seed, walk namespace,
global walk index *j*), the start list from a disjoint (base seed, starts
namespace) stream, and results are consumed in order — so the trained
embedding is **bit-identical for any worker count, prefetch depth, chunk
size (fixed or "auto") and transport** under every ``negative_source``.
The tests pin this invariant down.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.embedding.base import EmbeddingModel
from repro.embedding.trainer import TrainingResult, WalkTrainer, make_model
from repro.graph.csr import CSRGraph
from repro.parallel.chunking import (
    DEFAULT_CHUNK_SIZE,
    AdaptiveChunkController,
    EpochStats,
)
from repro.parallel.shm_ring import ShmWalkRing
from repro.sampling.negative import NegativeSampler, walk_frequencies
from repro.sampling.walks import Node2VecWalker, WalkParams
from repro.utils.rng import as_generator, draw_seed
from repro.utils.validation import check_in_set, check_positive

__all__ = [
    "NEGATIVE_SOURCES",
    "TRANSPORTS",
    "ParallelWalkGenerator",
    "PipelineTelemetry",
    "train_parallel",
]

#: Valid ``negative_source`` strategies (see module docstring).
NEGATIVE_SOURCES = ("corpus", "degree", "two_pass")

#: Valid ``transport`` settings (see module docstring).
TRANSPORTS = ("shm", "pickle")

# Seed namespaces: walk j draws from SeedSequence([seed, _WALK_NS, j]) where
# j is the *global* walk index — chunking-invariant by construction — and
# the start list from SeedSequence([seed, _STARTS_NS]).  The two streams
# live in tuples of different shape *and* different second element, so no
# walk index can ever collide with the start-list stream.
_WALK_NS = 0
_STARTS_NS = 1

# Worker globals, populated by the pool initializer via fork/spawn.  Only
# pool worker processes ever write these; the inline path passes state
# explicitly.
_WORKER_GRAPH: CSRGraph | None = None
_WORKER_PARAMS: WalkParams | None = None
_WORKER_SEED: int | None = None
_WORKER_RING: ShmWalkRing | None = None


def _init_worker(
    graph: CSRGraph, params: WalkParams, seed: int, ring_spec: dict | None
) -> None:
    global _WORKER_GRAPH, _WORKER_PARAMS, _WORKER_SEED, _WORKER_RING
    _WORKER_GRAPH = graph
    _WORKER_PARAMS = params
    _WORKER_SEED = seed
    _WORKER_RING = ShmWalkRing.attach(ring_spec) if ring_spec is not None else None


def _run_chunk(
    graph: CSRGraph, params: WalkParams, starts: np.ndarray, seed: int, lo: int
) -> tuple[list, float]:
    """Walk one chunk; returns ``(walks, generation_seconds)``.

    ``lo`` is the chunk's global walk offset: walk ``lo + k`` reseeds the
    walker from its own per-walk stream, making the corpus independent of
    how the start list was chunked.
    """
    t0 = time.perf_counter()
    walker = Node2VecWalker(graph, params, seed=0)
    walks = []
    for k, s in enumerate(starts):
        walker.rng = as_generator(np.random.SeedSequence([seed, _WALK_NS, lo + k]))
        walks.append(walker.walk(int(s)))
    return walks, time.perf_counter() - t0


def _walk_chunk_pickle(job: tuple) -> tuple:
    """Pool entry point, pickle transport: the chunk rides the result pipe."""
    starts, lo = job
    walks, gen_s = _run_chunk(_WORKER_GRAPH, _WORKER_PARAMS, starts, _WORKER_SEED, lo)
    return ("pickle", walks, gen_s)


def _walk_chunk_shm(job: tuple) -> tuple:
    """Pool entry point, shm transport: the chunk lands in a ring slot and
    only a control tuple rides the result pipe.  Chunks ragged beyond the
    slot shape degrade to the pickle payload for that chunk alone."""
    slot, starts, lo = job
    t0 = time.perf_counter()
    walks, _ = _run_chunk(_WORKER_GRAPH, _WORKER_PARAMS, starts, _WORKER_SEED, lo)
    if _WORKER_RING is not None and _WORKER_RING.write(slot, walks):
        return ("shm", slot, len(walks), time.perf_counter() - t0)
    return ("pickle", walks, time.perf_counter() - t0)


class _FlowStats:
    """In-flight walk accounting for one generation pass.

    ``peak_in_flight`` is the high-water mark of walks submitted to workers
    but not yet handed to the consumer, i.e. the quantity the bounded
    prefetch window is supposed to cap.  ``ipc_walk_bytes`` counts the walk
    payload bytes that crossed the pickle channel (zero for chunks moved
    through the shm ring).  All hooks run on the consumer thread
    (submission is consumer-driven), so no locking is needed.
    """

    def __init__(self):
        self.submitted_walks = 0
        self.consumed_walks = 0
        self.peak_in_flight = 0
        self.ipc_walk_bytes = 0

    def on_submit(self, n: int) -> None:
        self.submitted_walks += n
        in_flight = self.submitted_walks - self.consumed_walks
        if in_flight > self.peak_in_flight:
            self.peak_in_flight = in_flight

    def on_consume(self, n: int) -> None:
        self.consumed_walks += n


@dataclass
class PipelineTelemetry:
    """Per-stage timing + transport telemetry of one :func:`train_parallel`.

    ``generation_s`` sums the worker-side walk time (it may be fully hidden
    behind training); ``wait_s`` is the consumer's observable stall waiting
    for the next chunk; ``train_s`` is time inside the trainer.  A perfect
    pipeline hides all generation: ``wait_s ≈ 0``, ``overlap_efficiency ≈ 1``.

    ``transport`` is the transport the last generation pass actually used
    (``"inline"`` when no worker pool ran, else ``"shm"``/``"pickle"`` after
    any availability fallback); ``ipc_walk_bytes`` the walk payload bytes
    that crossed the pickle channel; ``chunk_sizes`` the per-epoch chunk
    size (one entry per epoch — informative under ``chunk_size="auto"``).

    ``n_chunks`` counts every chunk *consumed*, so per-chunk averages like
    ``generation_s / n_chunks`` stay meaningful for every source — for
    ``"two_pass"`` that includes the counting pass (≈ 2× the trained
    chunks, matching its doubled generation cost).
    """

    negative_source: str
    n_workers: int
    epochs: int
    n_chunks: int = 0
    generation_s: float = 0.0
    wait_s: float = 0.0
    train_s: float = 0.0
    total_s: float = 0.0
    peak_buffered_walks: int = 0
    transport: str = ""
    ipc_walk_bytes: int = 0
    chunk_sizes: list = field(default_factory=list)

    @property
    def overlap_efficiency(self) -> float:
        """Fraction of generation cost hidden behind training, in [0, 1]."""
        if self.generation_s <= 0.0:
            return 1.0
        return max(0.0, min(1.0, 1.0 - self.wait_s / self.generation_s))


class ParallelWalkGenerator:
    """Chunked, seeded, optionally multiprocess walk generation.

    Parameters
    ----------
    graph, params:
        what to walk on and how.
    n_workers:
        0 or 1 → inline generation (no processes); ≥2 → a fork pool.
    chunk_size:
        start nodes per work item; larger chunks amortize per-chunk
        overhead, smaller chunks pipeline better.  Chunking never changes
        the walks themselves (per-walk seeding), only the schedule.
    seed:
        base seed; walk ``j`` (global index) uses
        ``SeedSequence([seed, 0, j])`` and the start list
        ``SeedSequence([seed, 1])`` — disjoint namespaces, so the streams
        can never collide for any walk index.
    prefetch:
        maximum chunks in flight ahead of the consumer (default
        ``max(2, 2 * n_workers)``).  Bounds peak buffered walks at
        ``prefetch * chunk_size`` regardless of corpus size.
    transport:
        ``"shm"`` (default) — chunks travel through a shared-memory ring,
        zero-copy; ``"pickle"`` — chunks ride the pool's result pipe.
        Ignored on the inline path (no IPC).  ``effective_transport``
        records what the last pass actually used after fallback.
    """

    def __init__(
        self,
        graph: CSRGraph,
        params: WalkParams | None = None,
        *,
        n_workers: int = 0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        seed: int = 0,
        prefetch: int | None = None,
        transport: str = "shm",
    ):
        check_positive("chunk_size", chunk_size, integer=True)
        check_in_set("transport", transport, TRANSPORTS)
        if n_workers < 0:
            raise ValueError("n_workers must be >= 0")
        if prefetch is None:
            prefetch = max(2, 2 * int(n_workers))
        check_positive("prefetch", prefetch, integer=True)
        self.graph = graph
        self.params = params or WalkParams()
        self.n_workers = int(n_workers)
        self.chunk_size = int(chunk_size)
        self.seed = int(seed)
        self.prefetch = int(prefetch)
        self.transport = transport
        #: transport the most recent pass actually used
        #: ("inline" | "shm" | "pickle"; None before the first pass)
        self.effective_transport: str | None = None
        #: flow accounting of the most recent generation pass
        self.last_stats = _FlowStats()

    # ------------------------------------------------------------------ #
    # Seeding
    # ------------------------------------------------------------------ #

    def walk_seed(self, j: int) -> np.random.SeedSequence:
        """The stream of global walk ``j`` — independent of chunking."""
        return np.random.SeedSequence([self.seed, _WALK_NS, int(j)])

    def starts_seed(self) -> np.random.SeedSequence:
        """The start-list shuffle stream (disjoint from every walk)."""
        return np.random.SeedSequence([self.seed, _STARTS_NS])

    def _jobs(self, starts: np.ndarray) -> list[tuple]:
        """``(chunk_starts, global_walk_offset)`` work items, in order."""
        return [
            (starts[lo : lo + self.chunk_size], lo)
            for lo in range(0, starts.shape[0], self.chunk_size)
        ]

    def corpus_starts(self) -> np.ndarray:
        """The r-walks-per-node start list (shuffled per repetition, matching
        :meth:`Node2VecWalker.simulate`)."""
        rng = as_generator(self.starts_seed())
        n = self.graph.n_nodes
        reps = [rng.permutation(n) for _ in range(self.params.walks_per_node)]
        return np.concatenate(reps)

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #

    def generate_timed(
        self, starts: np.ndarray | None = None
    ) -> Iterator[tuple[list, float]]:
        """Yield ``(walk_chunk, generation_seconds)`` in deterministic chunk
        order, keeping at most ``prefetch`` chunks in flight.

        The prefetch window is driven entirely from the consumer side: jobs
        are submitted with ``apply_async`` and consumed FIFO, one fresh
        submission per consumed chunk.  Workers therefore never run more
        than ``prefetch`` chunks ahead — the property the streaming
        trainer's memory bound rests on — and no pool-internal thread ever
        blocks on caller state (throttling the lazy ``imap`` job feed
        instead can strand the pool's task-handler thread at shutdown,
        which ``Pool.terminate`` then joins forever).  ``self.last_stats``
        records the realized high-water mark.

        Under the shm transport the yielded walk arrays are *views* into a
        ring slot, valid only until the next chunk is requested; consume
        them before advancing the iterator, or copy (this is what makes
        the transport zero-copy on the streaming train path).  The ring
        carries ``prefetch + 1`` slots so a fresh job can be dispatched
        while the consumer still reads the chunk just handed over.
        """
        if starts is None:
            starts = self.corpus_starts()
        starts = np.asarray(starts, dtype=np.int64)
        jobs = self._jobs(starts)
        stats = self.last_stats = _FlowStats()

        if self.n_workers <= 1:
            self.effective_transport = "inline"
            for chunk_starts, lo in jobs:
                stats.on_submit(len(chunk_starts))
                result = _run_chunk(
                    self.graph, self.params, chunk_starts, self.seed, lo
                )
                stats.on_consume(len(result[0]))
                yield result
            return

        ring: ShmWalkRing | None = None
        transport = self.transport
        if transport == "shm":
            try:
                # one slot more than the window: a new job is dispatched
                # while the consumer still holds views of the chunk it was
                # just handed, so full prefetch depth stays in flight
                ring = ShmWalkRing.create(
                    self.prefetch + 1, self.chunk_size, self.params.length
                )
            except Exception:  # no /dev/shm, size limits, … → portable path
                ring = None
                transport = "pickle"
        self.effective_transport = transport

        ctx = mp.get_context("fork" if os.name == "posix" else "spawn")
        try:
            with ctx.Pool(
                self.n_workers,
                initializer=_init_worker,
                initargs=(
                    self.graph,
                    self.params,
                    self.seed,
                    ring.spec if ring is not None else None,
                ),
            ) as pool:
                pending: deque = deque()
                free_slots: deque = deque(range(ring.n_slots)) if ring else deque()
                job_iter = iter(jobs)

                def _submit_next() -> None:
                    job = next(job_iter, None)
                    if job is None:
                        return
                    chunk_starts, lo = job
                    stats.on_submit(len(chunk_starts))
                    if ring is not None:
                        slot = free_slots.popleft()
                        pending.append(
                            (slot, pool.apply_async(
                                _walk_chunk_shm, ((slot, chunk_starts, lo),)
                            ))
                        )
                    else:
                        pending.append(
                            (None, pool.apply_async(
                                _walk_chunk_pickle, ((chunk_starts, lo),)
                            ))
                        )

                for _ in range(self.prefetch):
                    _submit_next()
                # FIFO consumption of the submission order → deterministic
                while pending:
                    slot, fut = pending.popleft()
                    result = fut.get()
                    if result[0] == "shm":
                        _, slot_idx, _count, gen_s = result
                        walks = ring.read(slot_idx)
                        stats.on_consume(len(walks))
                        _submit_next()
                        yield walks, gen_s
                        # consumer is done with the slot's views: recycle,
                        # and drop our own frame's view ref so the ring can
                        # unmap cleanly at shutdown
                        free_slots.append(slot_idx)
                        walks = None
                    else:
                        _, walks, gen_s = result
                        stats.on_consume(len(walks))
                        stats.ipc_walk_bytes += sum(w.nbytes for w in walks)
                        if slot is not None:  # ragged fallback: slot unused
                            free_slots.append(slot)
                        _submit_next()
                        yield walks, gen_s
        finally:
            if ring is not None:
                ring.close()
                ring.unlink()

    def generate(self, starts: np.ndarray | None = None) -> Iterator[list]:
        """Yield walk chunks in deterministic chunk order (timing stripped).

        Shm-transport chunks are views with the same lifetime contract as
        :meth:`generate_timed`."""
        for walks, _ in self.generate_timed(starts):
            yield walks

    def all_walks(self, starts: np.ndarray | None = None) -> list:
        """The whole corpus as a list (chunks materialized, safe to keep)."""
        out: list = []
        for chunk in self.generate(starts):
            if self.effective_transport == "shm":
                out.extend(w.copy() for w in chunk)
            else:
                out.extend(chunk)
        return out


def train_parallel(
    graph: CSRGraph,
    *,
    dim: int = 32,
    model: str | EmbeddingModel = "proposed",
    hyper=None,
    epochs: int = 1,
    n_workers: int = 0,
    chunk_size: int | str = DEFAULT_CHUNK_SIZE,
    prefetch: int | None = None,
    transport: str = "shm",
    negative_source: str = "corpus",
    negative_power: float = 0.75,
    seed=0,
    **model_kwargs,
) -> TrainingResult:
    """Streaming pipelined counterpart of :func:`repro.embedding.train_on_graph`.

    Walk chunks stream out of the worker pool through a bounded prefetch
    window while the main process trains on them — chunk *i* trains while
    workers generate chunks *i+1 … i+prefetch*, mirroring the PS/PL overlap
    of the board.  Chunks move through the ``transport`` of choice
    (``"shm"`` zero-copy ring, default, falling back to ``"pickle"`` when
    shared memory is unavailable or a chunk outgrows its slot).  How soon
    training can start is governed by ``negative_source`` (see the module
    docstring for the trade-offs):

    * ``"corpus"`` — the paper's exact construction; buffers the entire
      first-epoch corpus before training (no first-epoch overlap, O(corpus)
      memory), later epochs stream.
    * ``"degree"`` — degree-bootstrapped sampler; streams from the first
      chunk with memory bounded by ``prefetch * chunk_size`` walks.
    * ``"two_pass"`` — one streamed counting pass, then streamed training
      over an identically-seeded regeneration; bit-identical to ``"corpus"``
      with bounded memory, at twice the generation cost.

    ``chunk_size`` may be a fixed int or ``"auto"``, which lets an
    :class:`~repro.parallel.chunking.AdaptiveChunkController` pick the
    initial size from the workload shape and re-balance it between epochs
    from the measured stall fraction.  Because walks are seeded by global
    walk index, the result is bit-identical across ``n_workers``,
    ``prefetch``, ``transport`` and ``chunk_size`` (fixed or ``"auto"``)
    settings for every ``negative_source`` — and bit-identical to itself
    run twice.  Seeds derive from the same 63-bit stream as the sequential
    trainer (:func:`repro.utils.rng.draw_seed`).

    Returns a :class:`TrainingResult` whose ``telemetry`` field carries the
    per-stage :class:`PipelineTelemetry`.
    """
    from repro.experiments.hyper import Node2VecParams

    check_positive("epochs", epochs, integer=True)
    check_in_set("negative_source", negative_source, NEGATIVE_SOURCES)
    check_in_set("transport", transport, TRANSPORTS)
    hp = hyper or Node2VecParams()
    rng = as_generator(seed)

    controller: AdaptiveChunkController | None = None
    if isinstance(chunk_size, str):
        check_in_set("chunk_size", chunk_size, ("auto",))
        controller = AdaptiveChunkController(
            n_walks=hp.walk_params().walks_per_node * graph.n_nodes,
            n_workers=int(n_workers),
        )
    else:
        check_positive("chunk_size", chunk_size, integer=True)

    if isinstance(model, str):
        mdl = make_model(model, graph.n_nodes, dim, seed=draw_seed(rng), **model_kwargs)
    elif model_kwargs:
        raise ValueError("model_kwargs only apply when model is a registry name")
    else:
        mdl = model

    # Draw every seed up front, independent of negative_source, so that
    # "corpus" and "two_pass" (same sampler distribution, same walk order)
    # consume identical streams and stay bit-identical to each other.
    sampler_seed = draw_seed(rng)
    epoch_seeds = [draw_seed(rng) for _ in range(epochs)]

    def _generator(epoch: int, cs: int) -> ParallelWalkGenerator:
        return ParallelWalkGenerator(
            graph,
            hp.walk_params(),
            n_workers=n_workers,
            chunk_size=cs,
            seed=epoch_seeds[epoch],
            prefetch=prefetch,
            transport=transport,
        )

    trainer = WalkTrainer(mdl, window=hp.w, ns=hp.ns)
    tele = PipelineTelemetry(
        negative_source=negative_source, n_workers=int(n_workers), epochs=int(epochs)
    )
    t_total = time.perf_counter()

    sampler: NegativeSampler | None = None
    if negative_source == "degree":
        sampler = NegativeSampler.from_degrees(
            graph, power=negative_power, seed=sampler_seed
        )

    def _consume(gen: ParallelWalkGenerator, on_chunk) -> None:
        """Drain one generation pass, folding stall/generation times, the
        chunk count, transport and the buffering high-water mark into the
        telemetry."""
        t_wait = time.perf_counter()
        for walks, gen_s in gen.generate_timed():
            tele.wait_s += time.perf_counter() - t_wait
            tele.generation_s += gen_s
            tele.n_chunks += 1
            on_chunk(walks)
            t_wait = time.perf_counter()
        tele.peak_buffered_walks = max(
            tele.peak_buffered_walks, gen.last_stats.peak_in_flight
        )
        tele.ipc_walk_bytes += gen.last_stats.ipc_walk_bytes
        tele.transport = gen.effective_transport

    def _train_chunk(walks: list) -> None:
        t0 = time.perf_counter()
        trainer.train_corpus(walks, sampler)
        tele.train_s += time.perf_counter() - t0

    for epoch in range(epochs):
        cs = controller.next_chunk_size() if controller else int(chunk_size)
        tele.chunk_sizes.append(cs)
        t_epoch = time.perf_counter()
        before = (tele.n_chunks, tele.generation_s, tele.wait_s, tele.train_s)
        # corpus buffering / two_pass counting stall by construction (no
        # training runs behind them), so their epochs carry no chunk-size
        # signal and must not steer the controller
        bootstrap_epoch = sampler is None and negative_source in ("corpus", "two_pass")

        gen = _generator(epoch, cs)
        if sampler is None and negative_source == "corpus":
            # buffer-then-train: the paper's exact first-epoch semantics.
            # shm chunks are slot views that die on slot reuse, so buffering
            # (the one path that retains walks) must materialize them.
            buffered: list = []

            def _buffer_chunk(walks: list, _buf=buffered, _gen=gen) -> None:
                if _gen.effective_transport == "shm":
                    _buf.extend(w.copy() for w in walks)
                else:
                    _buf.extend(walks)

            _consume(gen, _buffer_chunk)
            tele.peak_buffered_walks = max(tele.peak_buffered_walks, len(buffered))
            sampler = NegativeSampler.from_walks(
                buffered, graph.n_nodes, power=negative_power, seed=sampler_seed
            )
            _train_chunk(buffered)
        else:
            if sampler is None and negative_source == "two_pass":
                # counting pass: same seed → the identical corpus, walks
                # discarded right after counting
                freq = np.zeros(graph.n_nodes, dtype=np.int64)

                def _count_chunk(walks: list, _freq=freq) -> None:
                    _freq += walk_frequencies(walks, graph.n_nodes)

                _consume(_generator(epoch, cs), _count_chunk)
                sampler = NegativeSampler(freq, power=negative_power, seed=sampler_seed)
            _consume(gen, _train_chunk)

        if controller is not None and not bootstrap_epoch:
            controller.observe(
                EpochStats(
                    chunk_size=cs,
                    n_chunks=tele.n_chunks - before[0],
                    generation_s=tele.generation_s - before[1],
                    wait_s=tele.wait_s - before[2],
                    train_s=tele.train_s - before[3],
                    elapsed_s=time.perf_counter() - t_epoch,
                )
            )

    tele.total_s = time.perf_counter() - t_total
    return trainer.result(hyper=hp, telemetry=tele)
