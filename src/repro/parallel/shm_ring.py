"""Fixed-capacity shared-memory ring for zero-copy walk transport.

The board keeps walk traffic on-chip (BRAM) instead of round-tripping it
through host DRAM; the host-side analogue of that bottleneck is the pickle
channel between walk workers and the trainer — every chunk serialized in the
worker, copied through a pipe, deserialized in the parent.  LightRW and
GraphACT both identify this transport channel (not the walk computation) as
the scaling limiter.  :class:`ShmWalkRing` removes it: workers write walk
chunks straight into a ``multiprocessing.shared_memory`` segment and the
trainer reads NumPy *views* out of it, so the only bytes that still cross
the pickle channel are a three-int control tuple per chunk.

Segment lifecycle (create → close → unlink) is statically enforced by the
``shm-lifecycle`` rule of ``tools/reprolint`` (README "Static analysis &
typing").

Layout
------
The segment is one int64 array carved into ``n_slots`` identical slots::

    counts  : (n_slots,)                         walks currently in each slot
    lengths : (n_slots, walks_per_slot)          per-walk lengths (ragged walks)
    data    : (n_slots, walks_per_slot, walk_length)   the walk node ids

Walks are ragged (they truncate at dangling nodes) but never *longer* than
``walk_length``; the per-walk ``lengths`` row recovers the ragged shape on
the read side without copying.

Free/ready accounting
---------------------
The ring itself is only storage — slot states are owned by the two ends of
the pipeline:

* *free* slots live in a consumer-side free list.  A slot is assigned to a
  job at submission, and returns to the free list only after the consumer
  has finished with the views read from it.
* *ready* slots travel through the pool's ordinary FIFO result channel as
  ``(slot, n_walks, seconds)`` control tuples, which preserves the
  deterministic chunk order without any shared counters or locks.

Because submission is consumer-driven (one fresh submission per consumed
chunk), a slot can never be rewritten while the consumer still reads from
it as long as the ring has at least one slot more than the number of
in-flight jobs.

Lifetime
--------
The creating process owns the segment: ``close()`` + ``unlink()`` in a
``finally`` (or via the context manager).  Attaching processes must not
leave the segment registered with the ``resource_tracker`` — Python < 3.13
registers *attachments* too, which produces spurious "leaked shared_memory"
warnings and a double unlink at shutdown; :func:`attach` undoes that
(``track=False`` on 3.13+).
"""

from __future__ import annotations

import os

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["ShmWalkRing"]

_INT64 = np.dtype(np.int64)


def _open_untracked(name: str):
    """Attach to an existing segment without taking tracker ownership.

    Python >= 3.13 supports this directly (``track=False``).  On older
    versions attaching registers the name with the resource tracker too —
    but our workers are *forked* children sharing the parent's tracker
    process, so that registration is an idempotent set-add of a name the
    owner already registered, and the owner's ``unlink`` retires it exactly
    once.  (Explicitly unregistering here would instead delete the owner's
    registration out from under it.)
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


class ShmWalkRing:
    """``n_slots`` reusable chunk slots in one shared int64 segment.

    Construct with :meth:`create` (owner side) or :meth:`attach` (worker
    side); the owner's :meth:`spec` dict is what travels to workers.
    """

    def __init__(self, shm, *, n_slots: int, walks_per_slot: int, walk_length: int,
                 owner: bool):
        self.shm = shm
        self.n_slots = int(n_slots)
        self.walks_per_slot = int(walks_per_slot)
        self.walk_length = int(walk_length)
        self.owner = bool(owner)
        n, wps, wl = self.n_slots, self.walks_per_slot, self.walk_length
        arr = np.frombuffer(shm.buf, dtype=_INT64, count=n * (1 + wps + wps * wl))
        self._counts = arr[:n]
        self._lengths = arr[n : n + n * wps].reshape(n, wps)
        self._data = arr[n + n * wps :].reshape(n, wps, wl)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def create(cls, n_slots: int, walks_per_slot: int, walk_length: int) -> "ShmWalkRing":
        from multiprocessing import shared_memory

        check_positive("n_slots", n_slots, integer=True)
        check_positive("walks_per_slot", walks_per_slot, integer=True)
        check_positive("walk_length", walk_length, integer=True)
        words = n_slots * (1 + walks_per_slot + walks_per_slot * walk_length)
        shm = shared_memory.SharedMemory(create=True, size=words * _INT64.itemsize)
        ring = cls(shm, n_slots=n_slots, walks_per_slot=walks_per_slot,
                   walk_length=walk_length, owner=True)
        ring._counts[:] = 0
        return ring

    @classmethod
    def attach(cls, spec: dict) -> "ShmWalkRing":
        shm = _open_untracked(spec["name"])
        return cls(shm, n_slots=spec["n_slots"], walks_per_slot=spec["walks_per_slot"],
                   walk_length=spec["walk_length"], owner=False)

    @property
    def spec(self) -> dict:
        """Everything a worker needs to attach (picklable)."""
        return {
            "name": self.shm.name,
            "n_slots": self.n_slots,
            "walks_per_slot": self.walks_per_slot,
            "walk_length": self.walk_length,
        }

    @property
    def nbytes(self) -> int:
        return self.shm.size

    # ------------------------------------------------------------------ #
    # Slot I/O
    # ------------------------------------------------------------------ #

    def fits(self, walks) -> bool:
        """Whether a chunk of walks fits one slot's fixed shape."""
        return len(walks) <= self.walks_per_slot and all(
            len(w) <= self.walk_length for w in walks
        )

    def write(self, slot: int, walks) -> bool:
        """Write a chunk into ``slot``; False (slot untouched) if it is
        ragged beyond the slot shape — the caller then falls back to the
        pickle channel for this chunk."""
        if not self.fits(walks):
            return False
        lengths = self._lengths[slot]
        data = self._data[slot]
        for i, w in enumerate(walks):
            n = len(w)
            lengths[i] = n
            data[i, :n] = w
        self._counts[slot] = len(walks)
        return True

    def read(self, slot: int) -> list:
        """The chunk in ``slot`` as ragged int64 *views* (zero-copy).

        Views alias the slot: they stay valid only until the slot is handed
        back to the free list (i.e. until the next chunk is requested).
        Callers that retain walks past that point must copy.
        """
        count = int(self._counts[slot])
        lengths = self._lengths[slot]
        data = self._data[slot]
        return [data[i, : int(lengths[i])] for i in range(count)]

    # ------------------------------------------------------------------ #
    # Lifetime
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Drop this process's mapping (never raises).

        The consumer may still hold walk views into the segment (``read``
        is zero-copy); ``mmap`` refuses to unmap while such exported
        pointers exist.  In that case we detach the ``SharedMemory``
        handles instead: the file descriptor closes now, the mapping is
        released when the last view is garbage-collected, and the
        ``SharedMemory`` destructor becomes a no-op rather than raising an
        unraisable ``BufferError`` at GC time.  ``unlink`` does not need
        the mapping gone, so the segment itself is still removed either
        way.
        """
        self._counts = self._lengths = self._data = None
        try:
            self.shm.close()
        except BufferError:
            # Best-effort detach via SharedMemory internals (stable since
            # 3.8, but guarded: if a future CPython renames them we degrade
            # to the unraisable-warning behavior rather than breaking).
            shm = self.shm
            if hasattr(shm, "_buf"):
                shm._buf = None  # the last walk view keeps the buffer alive
            if hasattr(shm, "_mmap"):
                shm._mmap = None  # unmapped when that view dies
            fd = getattr(shm, "_fd", -1)
            if fd >= 0:
                try:
                    os.close(fd)
                except OSError:
                    pass
                shm._fd = -1

    def unlink(self) -> None:
        """Remove the segment (owner side)."""
        if self.owner:
            self.shm.unlink()

    def __enter__(self) -> "ShmWalkRing":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()

    def __repr__(self) -> str:
        return (
            f"ShmWalkRing(n_slots={self.n_slots}, "
            f"walks_per_slot={self.walks_per_slot}, "
            f"walk_length={self.walk_length}, nbytes={self.nbytes})"
        )
