"""Telemetry-driven chunk sizing for the streaming pipeline.

Chunk size is the pipeline's IPC-granularity knob: larger chunks amortize
the per-chunk fixed costs (job dispatch, walker construction, the control
round-trip) over more walks, smaller chunks pipeline finer — training can
start sooner, the prefetch window buffers less, and the tail (the last
chunks, which nothing overlaps) is shorter.  The right setting depends on
the graph, the walk length and the host, so ``chunk_size="auto"`` lets the
measured generation/stall/train split pick it.

The controller is a deliberately simple multiplicative hill-climb over the
*stall fraction* — the share of wall-clock the trainer spent waiting on
workers (:attr:`PipelineTelemetry.wait_s` / total):

* stall above ``high_stall`` → generation is the visible bottleneck; double
  the chunk size so fewer, larger dispatches spend less of the workers'
  time on per-chunk overhead.
* stall below ``low_stall`` → generation is fully hidden; halve the chunk
  size to shrink buffered memory and pipeline latency for free.
* in between → leave it alone (hysteresis band, prevents oscillation).

Re-sizing is only sound because walk streams are seeded by **global walk
index**, not by chunk index (see ``repro.parallel.pipeline``): the corpus —
and therefore the trained embedding — is bit-identical under any chunking,
so the controller can rebalance between epochs without touching results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive

__all__ = [
    "AdaptiveChunkController",
    "EpochStats",
    "DEFAULT_CHUNK_SIZE",
    "MIN_CHUNK_SIZE",
    "MAX_CHUNK_SIZE",
]

#: Fixed-size default (the PR-1 value) and the auto-controller's clamp range.
DEFAULT_CHUNK_SIZE = 256
MIN_CHUNK_SIZE = 32
MAX_CHUNK_SIZE = 8192


@dataclass(frozen=True)
class EpochStats:
    """One epoch's telemetry deltas, as fed back to the controller."""

    chunk_size: int
    n_chunks: int
    generation_s: float
    wait_s: float
    train_s: float
    elapsed_s: float

    @property
    def stall_fraction(self) -> float:
        """Share of the epoch's wall-clock spent stalled on workers."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return max(0.0, min(1.0, self.wait_s / self.elapsed_s))


class AdaptiveChunkController:
    """Between-epoch chunk-size controller (``chunk_size="auto"``).

    Parameters
    ----------
    n_walks:
        walks per epoch (sets the initial size and the upper clamp — a
        chunk larger than the per-worker share serializes the pool).
    n_workers:
        pipeline worker count (0/1 → inline).
    initial:
        explicit starting size; default aims for ~4 chunks per worker so
        the pool is load-balanced from the first epoch.
    low_stall / high_stall:
        hysteresis band on the stall fraction (see module docstring).
    """

    def __init__(
        self,
        *,
        n_walks: int,
        n_workers: int,
        initial: int | None = None,
        min_size: int = MIN_CHUNK_SIZE,
        max_size: int = MAX_CHUNK_SIZE,
        low_stall: float = 0.02,
        high_stall: float = 0.10,
    ):
        check_positive("n_walks", n_walks, integer=True)
        if n_workers < 0:
            raise ValueError("n_workers must be >= 0")
        check_positive("min_size", min_size, integer=True)
        check_positive("max_size", max_size, integer=True)
        if min_size > max_size:
            raise ValueError("min_size must be <= max_size")
        if not 0.0 <= low_stall < high_stall <= 1.0:
            raise ValueError("need 0 <= low_stall < high_stall <= 1")
        self.n_walks = int(n_walks)
        self.n_workers = int(n_workers)
        self.min_size = int(min_size)
        self.max_size = int(max_size)
        self.low_stall = float(low_stall)
        self.high_stall = float(high_stall)
        self.history: list[EpochStats] = []
        if initial is None:
            lanes = max(1, self.n_workers)
            initial = self.n_walks if lanes == 1 else -(-self.n_walks // (4 * lanes))
        check_positive("initial", initial, integer=True)
        self._size = self._clamp(int(initial))

    def _clamp(self, size: int) -> int:
        # never a chunk bigger than the per-worker share of the corpus (a
        # larger one would serialize the pool and the hill-climb could
        # never recover), never outside the configured range
        lanes = max(1, self.n_workers)
        share = -(-self.n_walks // lanes)
        size = min(size, max(self.min_size, share))
        return max(self.min_size, min(self.max_size, size))

    def next_chunk_size(self) -> int:
        """The size the next epoch should use."""
        return self._size

    def observe(self, stats: EpochStats) -> None:
        """Fold one epoch's telemetry in and re-decide the size."""
        self.history.append(stats)
        stall = stats.stall_fraction
        if stall > self.high_stall:
            self._size = self._clamp(self._size * 2)
        elif stall < self.low_stall:
            self._size = self._clamp(self._size // 2)

    def __repr__(self) -> str:
        return (
            f"AdaptiveChunkController(size={self._size}, "
            f"band=[{self.low_stall}, {self.high_stall}], "
            f"epochs_observed={len(self.history)})"
        )
