"""Walk tasks: the unit of work the streaming engine consumes.

The static corpus path is one big task ("walk from these starts on the base
graph"); the dynamic-graph replay is a *stream* of tasks, each tagged with
the graph snapshot epoch it belongs to and (optionally) carrying that
snapshot.  Tagging tasks instead of rebuilding the pipeline per snapshot is
what lets scenario replay flow through the same bounded-prefetch engine as
static training — mirroring LightRW's dynamic-walk framing, where graph
mutation events and walk requests share one streaming substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # import kept type-only: tasks sit below the graph layer users
    from repro.graph.csr import CSRGraph

__all__ = ["WalkTask"]


@dataclass(frozen=True)
class WalkTask:
    """One batch of walk starts against one graph snapshot.

    Parameters
    ----------
    starts:
        start-node ids; the engine chunks them internally (``chunk_size``),
        so a task may be any size, and walk seeds stay pinned to the
        *global* walk index across the whole task stream.
    epoch:
        snapshot epoch tag (e.g. the edge-event step).  Consecutive tasks
        with distinct epochs mark snapshot boundaries in the telemetry
        (``n_snapshots``, ``snapshot_stall_s``).
    graph:
        the snapshot to walk on, or ``None`` for the engine's base graph.
        Chunks of a task never mix snapshots.
    delta:
        optional ``(d, 2)`` new-edge batch such that ``graph`` equals the
        previous task's graph with these edges inserted
        (:meth:`~repro.graph.csr.CSRGraph.insert_edges`).  When present,
        the snapshot transport may ship this O(delta) array instead of the
        full snapshot and let workers patch their cached CSR in place; it
        is an optimization hint only — correctness never depends on it.
    """

    starts: np.ndarray = field(repr=False)
    epoch: int = 0
    graph: "CSRGraph | None" = field(default=None, repr=False)
    delta: "np.ndarray | None" = field(default=None, repr=False)

    def __post_init__(self):
        starts = np.asarray(self.starts, dtype=np.int64).reshape(-1)
        object.__setattr__(self, "starts", starts)
        if self.delta is not None:
            delta = np.asarray(self.delta, dtype=np.int64).reshape(-1, 2)
            object.__setattr__(self, "delta", delta)

    @property
    def n_walks(self) -> int:
        return int(self.starts.shape[0])

    def __repr__(self) -> str:
        where = "base" if self.graph is None else repr(self.graph)
        return f"WalkTask(n_walks={self.n_walks}, epoch={self.epoch}, graph={where})"
