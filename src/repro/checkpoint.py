"""Model checkpointing — persistence for the IoT deployment story.

An edge device training continuously (the paper's setting) must survive
restarts: the trainable state of the proposed model is exactly (β, P) plus
its scalar hyper-parameters, all of which round-trip through one ``.npz``
file.  The SGD baseline checkpoints (W_in, W_out) the same way.

The format is intentionally plain NumPy so a host tool-chain (or the PS-side
firmware) can read it without this library.

The config block also records the model's preferred execution backend
(:attr:`~repro.embedding.base.EmbeddingModel.exec_backend`), so a restored
model resumes training through the same chunk kernel it was trained with —
any :data:`~repro.embedding.kernels.EXEC_REGISTRY` name (``"reference"``,
``"fused"``, ``"blocked"``) round-trips; checkpoints written before the
kernel layer load as ``"reference"``.  Backend construction knobs (e.g.
``BlockedKernel(block_contexts=...)``) are per-run configuration, not model
state, and are deliberately not persisted — a restored ``"blocked"`` model
trains with the default one-walk blocks unless the run says otherwise.
"""

from __future__ import annotations

import json

import numpy as np

from repro.embedding.base import EmbeddingModel
from repro.embedding.batch_rls import BatchRLSSkipGram
from repro.embedding.block import BlockOSELMSkipGram
from repro.embedding.dataflow import DataflowOSELMSkipGram
from repro.embedding.sequential import OSELMSkipGram
from repro.embedding.skipgram import SkipGramSGD

__all__ = ["save_model", "load_model"]

_FORMAT_VERSION = 1


def _config_of(model: EmbeddingModel) -> dict:
    if isinstance(model, OSELMSkipGram):  # covers the deferred subclasses
        if isinstance(model, BlockOSELMSkipGram):
            kind = "block"
        elif isinstance(model, DataflowOSELMSkipGram):
            kind = "dataflow"
        elif isinstance(model, BatchRLSSkipGram):
            kind = "batch_rls"
        else:
            kind = "proposed"
        config = {
            "kind": kind,
            "n_nodes": model.n_nodes,
            "dim": model.dim,
            "mu": model.mu,
            "p0": model.p0,
            "weight_tying": model.weight_tying,
            "denominator": model.denominator,
            "duplicate_policy": model.duplicate_policy,
            "forgetting_factor": model.forgetting_factor,
            "n_walks_trained": model.n_walks_trained,
            "exec_backend": model.exec_backend,
        }
        if kind == "batch_rls":
            # the deferral unit is model state ("walk" | int | "chunk"):
            # a restored model must keep the spans it was trained with
            config["defer_span"] = model.defer_span
        return config
    if isinstance(model, SkipGramSGD):
        return {
            "kind": "original",
            "n_nodes": model.n_nodes,
            "dim": model.dim,
            "lr": model.lr,
            "exec_backend": model.exec_backend,
        }
    raise TypeError(f"don't know how to checkpoint {type(model).__name__}")


def save_model(model: EmbeddingModel, path: str) -> None:
    """Write a model checkpoint (.npz)."""
    config = _config_of(model)
    arrays: dict[str, np.ndarray] = {}
    if isinstance(model, OSELMSkipGram):
        arrays["B"] = model.B
        arrays["P"] = model.P
        if model._alpha is not None:
            arrays["alpha"] = model._alpha
    else:
        arrays["w_in"] = model.w_in
        arrays["w_out"] = model.w_out
    np.savez(
        path,
        __meta__=np.frombuffer(
            json.dumps({"version": _FORMAT_VERSION, "config": config}).encode(),
            dtype=np.uint8,
        ),
        **arrays,
    )


def load_model(path: str) -> EmbeddingModel:
    """Reconstruct a model from :func:`save_model` output."""
    with np.load(path) as data:
        meta = json.loads(bytes(data["__meta__"].tobytes()).decode())
        if meta.get("version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {meta.get('version')}")
        cfg = meta["config"]
        kind = cfg["kind"]
        if kind in ("proposed", "dataflow", "block", "batch_rls"):
            cls = {
                "proposed": OSELMSkipGram,
                "dataflow": DataflowOSELMSkipGram,
                "block": BlockOSELMSkipGram,
                "batch_rls": BatchRLSSkipGram,
            }[kind]
            extra = {}
            if kind == "batch_rls":
                extra["defer_span"] = cfg.get("defer_span", "walk")
            model = cls(
                cfg["n_nodes"],
                cfg["dim"],
                mu=cfg["mu"],
                p0=cfg["p0"],
                weight_tying=cfg["weight_tying"],
                denominator=cfg["denominator"],
                duplicate_policy=cfg["duplicate_policy"],
                forgetting_factor=cfg["forgetting_factor"],
                # version-1 checkpoints predate the kernel layer: default
                # to the bit-identical reference backend
                exec_backend=cfg.get("exec_backend", "reference"),
                seed=0,
                **extra,
            )
            model.B = data["B"].copy()
            model.P = data["P"].copy()
            if "alpha" in data:
                model._alpha = data["alpha"].copy()
            model.n_walks_trained = int(cfg["n_walks_trained"])
            return model
        if kind == "original":
            model = SkipGramSGD(
                cfg["n_nodes"],
                cfg["dim"],
                lr=cfg["lr"],
                exec_backend=cfg.get("exec_backend", "reference"),
                seed=0,
            )
            model.w_in = data["w_in"].copy()
            model.w_out = data["w_out"].copy()
            return model
        raise ValueError(f"unknown checkpoint kind {kind!r}")
