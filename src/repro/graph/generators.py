"""Random-graph generators.

These provide both generic substrates (Erdős–Rényi, Barabási–Albert, trees)
used in tests, and the degree-corrected stochastic block models used to stand
in for the paper's datasets (see ``repro.graph.datasets`` and the
substitution table in DESIGN.md).

All generators return :class:`~repro.graph.csr.CSRGraph` and take an explicit
``seed`` for reproducibility.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive, check_probability

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "random_tree",
    "planted_partition",
    "degree_corrected_sbm",
    "ring_of_cliques",
]


def erdos_renyi(n: int, p: float, *, seed=None) -> CSRGraph:
    """G(n, p) undirected random graph (no self loops).

    Sampling is vectorized: candidate pairs are drawn block-wise from the
    upper triangle via geometric skipping, giving O(m) expected work instead
    of O(n^2).
    """
    check_positive("n", n, integer=True)
    check_probability("p", p)
    rng = as_generator(seed)
    total_pairs = n * (n - 1) // 2
    if p == 0.0 or total_pairs == 0:
        return CSRGraph.from_edges(n, np.empty((0, 2), dtype=np.int64))
    if p == 1.0:
        iu = np.triu_indices(n, k=1)
        return CSRGraph.from_edges(n, np.stack(iu, axis=1))

    # Geometric skipping over linearized upper-triangle indices.
    picks = []
    pos = -1
    log1p = np.log1p(-p)
    # Draw skips in blocks to amortize RNG overhead.
    expected = max(16, int(total_pairs * p * 1.2))
    while True:
        u = rng.random(expected)
        skips = np.floor(np.log(u) / log1p).astype(np.int64) + 1
        steps = np.cumsum(skips) + pos
        inside = steps < total_pairs
        picks.append(steps[inside])
        if not inside.all():
            break
        pos = int(steps[-1])
    lin = np.concatenate(picks)

    # De-linearize: row i of the upper triangle starts at offset
    # i*n - i*(i+1)/2 - i ... solved via searchsorted on row starts.
    row_starts = np.cumsum(np.arange(n - 1, 0, -1, dtype=np.int64))
    row_starts = np.concatenate([[0], row_starts])
    i = np.searchsorted(row_starts, lin, side="right") - 1
    j = lin - row_starts[i] + i + 1
    edges = np.stack([i, j], axis=1)
    return CSRGraph.from_edges(n, edges)


def barabasi_albert(n: int, m: int, *, seed=None) -> CSRGraph:
    """Preferential-attachment graph: each new node attaches to ``m`` nodes.

    Matches the classic BA process (repeated-endpoint sampling from the
    degree-weighted multiset), which yields heavy-tailed degrees similar to
    the Amazon co-purchase graphs' skew.
    """
    check_positive("n", n, integer=True)
    check_positive("m", m, integer=True)
    if m >= n:
        raise ValueError(f"m ({m}) must be < n ({n})")
    rng = as_generator(seed)

    # Endpoint multiset; every arc contributes both endpoints.
    repeated: list[int] = []
    edges: list[tuple[int, int]] = []
    # seed star on the first m+1 nodes so every node has degree >= 1
    for v in range(1, m + 1):
        edges.append((0, v))
        repeated += [0, v]
    for v in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            t = repeated[rng.integers(len(repeated))]
            targets.add(int(t))
        for t in targets:
            edges.append((v, t))
            repeated += [v, t]
    return CSRGraph.from_edges(n, np.asarray(edges, dtype=np.int64))


def random_tree(n: int, *, seed=None) -> CSRGraph:
    """Uniform random labelled tree via a Prüfer sequence."""
    check_positive("n", n, integer=True)
    if n == 1:
        return CSRGraph.from_edges(1, np.empty((0, 2), dtype=np.int64))
    if n == 2:
        return CSRGraph.from_edges(2, np.array([[0, 1]]))
    rng = as_generator(seed)
    prufer = rng.integers(0, n, size=n - 2)
    degree = np.ones(n, dtype=np.int64)
    np.add.at(degree, prufer, 1)

    import heapq

    leaves = [int(v) for v in np.flatnonzero(degree == 1)]
    heapq.heapify(leaves)
    edges = np.empty((n - 1, 2), dtype=np.int64)
    for k, a in enumerate(prufer):
        leaf = heapq.heappop(leaves)
        edges[k] = (leaf, a)
        degree[a] -= 1
        if degree[a] == 1:
            heapq.heappush(leaves, int(a))
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    edges[n - 2] = (u, v)
    return CSRGraph.from_edges(n, edges)


def _sample_block_edges(
    rng: np.random.Generator,
    nodes_a: np.ndarray,
    nodes_b: np.ndarray,
    n_edges: int,
    weight_a: np.ndarray | None,
    weight_b: np.ndarray | None,
) -> np.ndarray:
    """Sample ``n_edges`` endpoint pairs between two node pools.

    Degree correction enters via per-node selection weights; duplicates and
    self loops are removed downstream by ``CSRGraph.from_edges``/filtering.
    """
    if n_edges <= 0 or nodes_a.size == 0 or nodes_b.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    pa = None if weight_a is None else weight_a / weight_a.sum()
    pb = None if weight_b is None else weight_b / weight_b.sum()
    us = rng.choice(nodes_a, size=n_edges, p=pa)
    vs = rng.choice(nodes_b, size=n_edges, p=pb)
    pairs = np.stack([us, vs], axis=1)
    return pairs[pairs[:, 0] != pairs[:, 1]]


def planted_partition(
    n: int,
    n_classes: int,
    *,
    avg_degree: float,
    homophily: float = 0.9,
    seed=None,
) -> CSRGraph:
    """Planted-partition SBM with equal-size communities.

    ``homophily`` is the fraction of edge endpoints that stay inside the
    community. Node labels are attached for downstream classification.
    """
    return degree_corrected_sbm(
        n,
        n_classes,
        avg_degree=avg_degree,
        homophily=homophily,
        degree_exponent=None,
        seed=seed,
    )


def degree_corrected_sbm(
    n: int,
    n_classes: int,
    *,
    avg_degree: float,
    homophily: float = 0.9,
    degree_exponent: float | None = 2.5,
    seed=None,
) -> CSRGraph:
    """Degree-corrected stochastic block model.

    Parameters
    ----------
    n, n_classes:
        node count and number of planted communities (node labels returned on
        the graph).
    avg_degree:
        target mean degree; the realized edge count is close to
        ``n * avg_degree / 2`` minus removed duplicates/self loops.
    homophily:
        probability that an edge is intra-community.
    degree_exponent:
        if not ``None``, node propensities follow a Pareto power law with this
        exponent, giving the heavy-tailed degrees of co-purchase graphs;
        ``None`` gives (near-)uniform degrees like a plain planted partition.
    """
    check_positive("n", n, integer=True)
    check_positive("n_classes", n_classes, integer=True)
    check_positive("avg_degree", avg_degree)
    check_probability("homophily", homophily)
    if n_classes > n:
        raise ValueError("cannot have more classes than nodes")
    rng = as_generator(seed)

    labels = np.sort(rng.integers(0, n_classes, size=n))
    # guarantee every class is non-empty
    labels[:n_classes] = np.arange(n_classes)
    labels = labels[rng.permutation(n)]

    if degree_exponent is None:
        theta = np.ones(n)
    else:
        theta = rng.pareto(degree_exponent - 1.0, size=n) + 1.0

    target_edges = int(round(n * avg_degree / 2))
    intra_edges = int(round(target_edges * homophily))
    inter_edges = target_edges - intra_edges

    chunks: list[np.ndarray] = []
    class_nodes = [np.flatnonzero(labels == c) for c in range(n_classes)]
    class_mass = np.array([theta[cn].sum() for cn in class_nodes])
    per_class = rng.multinomial(intra_edges, class_mass / class_mass.sum())
    for c, m_c in enumerate(per_class):
        cn = class_nodes[c]
        chunks.append(_sample_block_edges(rng, cn, cn, int(m_c), theta[cn], theta[cn]))

    if inter_edges > 0 and n_classes > 1:
        us = rng.choice(n, size=inter_edges, p=theta / theta.sum())
        vs = rng.choice(n, size=inter_edges, p=theta / theta.sum())
        keep = labels[us] != labels[vs]
        chunks.append(np.stack([us[keep], vs[keep]], axis=1))

    edges = (
        np.concatenate(chunks, axis=0) if chunks else np.empty((0, 2), dtype=np.int64)
    )
    graph = CSRGraph.from_edges(n, edges, node_labels=labels)

    # Top-up: duplicate pairs and self loops collapse during CSR construction,
    # leaving the realized edge count a few percent below target.  Resample
    # the deficit (same homophily mix) until within 0.5% or attempts run out.
    all_edges = [graph.edge_array()]
    for _ in range(6):
        graph = CSRGraph.from_edges(
            n, np.concatenate(all_edges, axis=0), node_labels=labels
        )
        deficit = target_edges - graph.n_edges
        if deficit <= max(1, int(0.005 * target_edges)):
            break
        extra = int(np.ceil(deficit * 1.05))
        n_intra = int(round(extra * homophily))
        top: list[np.ndarray] = []
        per_class = rng.multinomial(n_intra, class_mass / class_mass.sum())
        for c, m_c in enumerate(per_class):
            cn = class_nodes[c]
            top.append(_sample_block_edges(rng, cn, cn, int(m_c), theta[cn], theta[cn]))
        n_inter = extra - n_intra
        if n_inter > 0 and n_classes > 1:
            us = rng.choice(n, size=n_inter, p=theta / theta.sum())
            vs = rng.choice(n, size=n_inter, p=theta / theta.sum())
            keep = labels[us] != labels[vs]
            top.append(np.stack([us[keep], vs[keep]], axis=1))
        if top:
            all_edges.append(np.concatenate(top, axis=0))
    return graph


def ring_of_cliques(n_cliques: int, clique_size: int, *, seed=None) -> CSRGraph:
    """Deterministic community benchmark: cliques joined in a ring.

    Handy in tests because the optimal embedding/clustering is known exactly.
    Labels each clique as its own class.
    """
    check_positive("n_cliques", n_cliques, integer=True)
    check_positive("clique_size", clique_size, integer=True)
    if clique_size < 2:
        raise ValueError("clique_size must be >= 2")
    n = n_cliques * clique_size
    edges = []
    for c in range(n_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((base + i, base + j))
        nxt = ((c + 1) % n_cliques) * clique_size
        if n_cliques > 1:
            edges.append((base, nxt))
    labels = np.repeat(np.arange(n_cliques), clique_size)
    return CSRGraph.from_edges(n, np.asarray(edges), node_labels=labels)
