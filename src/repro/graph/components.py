"""Connectivity algorithms: connected components and spanning forests.

The paper's "seq" evaluation scenario (§4.3.2) removes edges from the full
graph so the initial graph "becomes a forest without changing the number of
connected components", then replays the removed edges one at a time.  The
helpers here implement exactly that carve-out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.rng import as_generator

__all__ = [
    "connected_components",
    "n_connected_components",
    "spanning_forest_mask",
    "ForestSplit",
    "forest_split",
]


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component id per node (ids are 0..k-1 in order of first appearance).

    Iterative BFS over the CSR arrays — no recursion, O(n + m).
    """
    n = graph.n_nodes
    comp = np.full(n, -1, dtype=np.int64)
    indptr, indices = graph.indptr, graph.indices
    next_comp = 0
    stack: list[int] = []
    for start in range(n):
        if comp[start] != -1:
            continue
        comp[start] = next_comp
        stack.append(start)
        while stack:
            u = stack.pop()
            row = indices[indptr[u] : indptr[u + 1]]
            fresh = row[comp[row] == -1]
            comp[fresh] = next_comp
            stack.extend(int(v) for v in fresh)
        next_comp += 1
    return comp


def n_connected_components(graph: CSRGraph) -> int:
    comp = connected_components(graph)
    return int(comp.max()) + 1 if comp.size else 0


class _UnionFind:
    """Array-based union-find with path halving + union by size."""

    __slots__ = ("parent", "size")

    def __init__(self, n: int):
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = int(parent[x])
        return x

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True


def spanning_forest_mask(graph: CSRGraph, *, seed=None) -> np.ndarray:
    """Boolean mask over ``graph.edge_array()`` selecting a spanning forest.

    The forest spans every connected component (tree edges = n - #components),
    so keeping exactly these edges preserves the component count while making
    the graph acyclic — the paper's initial-graph construction.  The edge
    order considered is randomized by ``seed`` so different seeds carve
    different forests.
    """
    edges = graph.edge_array()
    mask = np.zeros(edges.shape[0], dtype=bool)
    uf = _UnionFind(graph.n_nodes)
    order = as_generator(seed).permutation(edges.shape[0])
    for e in order:
        u, v = int(edges[e, 0]), int(edges[e, 1])
        if u == v:
            continue
        if uf.union(u, v):
            mask[e] = True
    return mask


@dataclass(frozen=True)
class ForestSplit:
    """Result of :func:`forest_split`.

    Attributes
    ----------
    initial:
        the spanning-forest graph (same node set and labels as the input).
    removed_edges:
        (k, 2) array of the non-forest edges, in the randomized order in which
        the "seq" scenario replays them.
    forest_mask:
        boolean mask over ``graph.edge_array()`` marking forest edges.
    """

    initial: CSRGraph
    removed_edges: np.ndarray
    forest_mask: np.ndarray


def forest_split(graph: CSRGraph, *, seed=None) -> ForestSplit:
    """Split a graph into (spanning forest, replay stream of removed edges).

    Guarantees (validated by tests):

    * the initial graph is a forest: ``n_edges == n_nodes - #components``;
    * the number of connected components is unchanged;
    * forest edges + removed edges = original edges (as sets).
    """
    rng = as_generator(seed)
    mask = spanning_forest_mask(graph, seed=rng)
    edges = graph.edge_array()
    # drop self loops from the replay stream: they never merge components and
    # node2vec walks treat them as ordinary transitions anyway
    removed = edges[~mask]
    removed = removed[removed[:, 0] != removed[:, 1]]
    removed = removed[rng.permutation(removed.shape[0])]
    initial = graph.subgraph_edges(mask)
    return ForestSplit(initial=initial, removed_edges=removed, forest_mask=mask)
