"""Immutable CSR (compressed sparse row) graph — the substrate every other
package walks on.

Design notes
------------
* The paper's random-walk engine needs O(1) access to a node's neighbor
  slice; CSR gives that as a contiguous view (``indices[indptr[v]:indptr[v+1]]``),
  which also keeps the hot loop cache-friendly (guides: prefer views over
  copies, contiguous access over random access).
* Graphs are *undirected* by default (all three paper datasets are); an
  undirected edge {u, v} is stored twice, once per direction, so degree and
  neighbor queries need no branching.
* Instances are immutable: the dynamic-graph scenario (`repro.graph.dynamic`)
  produces a fresh snapshot per edge batch rather than mutating in place,
  which keeps walk samplers free of invalidation bugs.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["CSRGraph"]


class CSRGraph:
    """An undirected (or directed) graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n_nodes + 1``; row pointer.
    indices:
        ``int64`` array of length ``indptr[-1]``; column indices (neighbor
        ids), sorted within each row.
    weights:
        optional ``float64`` array aligned with ``indices``; defaults to 1.0
        for every edge (the paper's datasets are unweighted, but Eq. (1)
        includes edge weights ``w_ux`` so the substrate carries them).
    directed:
        if ``False`` (default) the arrays are expected to contain both
        directions of every edge; validated unless ``validate=False``.
    node_labels:
        optional ``int64`` class label per node (for the downstream
        logistic-regression evaluation).
    """

    __slots__ = ("indptr", "indices", "weights", "directed", "node_labels", "_degree")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray | None = None,
        *,
        directed: bool = False,
        node_labels: np.ndarray | None = None,
        validate: bool = True,
    ):
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if weights is None:
            weights = np.ones(indices.shape[0], dtype=np.float64)
        else:
            weights = np.ascontiguousarray(weights, dtype=np.float64)

        if indptr.ndim != 1 or indptr.shape[0] < 1:
            raise ValueError("indptr must be a 1-D array of length n_nodes + 1")
        if indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if indices.shape[0] != indptr[-1]:
            raise ValueError(
                f"indices length {indices.shape[0]} != indptr[-1] {indptr[-1]}"
            )
        if weights.shape[0] != indices.shape[0]:
            raise ValueError("weights must align with indices")

        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.directed = bool(directed)
        self._degree = np.diff(indptr)

        if node_labels is not None:
            node_labels = np.ascontiguousarray(node_labels, dtype=np.int64)
            if node_labels.shape[0] != self.n_nodes:
                raise ValueError("node_labels must have one entry per node")
        self.node_labels = node_labels

        if validate:
            self._validate()

        # Freeze the backing arrays: CSRGraph is an immutable snapshot.
        for arr in (self.indptr, self.indices, self.weights, self._degree):
            arr.setflags(write=False)
        if self.node_labels is not None:
            self.node_labels.setflags(write=False)

    # ------------------------------------------------------------------ #
    # Construction / validation
    # ------------------------------------------------------------------ #

    def _validate(self) -> None:
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.n_nodes
        ):
            raise ValueError("indices contain out-of-range node ids")
        if np.any(self.weights < 0):
            raise ValueError("edge weights must be non-negative")
        # Rows must be sorted and duplicate-free for binary-search membership
        # queries.  Checked vectorized: a violation is a non-increasing step in
        # `indices` that does not cross a row boundary.
        if self.indices.size > 1:
            steps = np.diff(self.indices)
            boundaries = np.zeros(self.indices.size - 1, dtype=bool)
            inner = self.indptr[1:-1]
            inner = inner[(inner > 0) & (inner < self.indices.size)]
            boundaries[inner - 1] = True
            bad = ~boundaries & (steps <= 0)
            if np.any(bad):
                first = int(np.flatnonzero(bad)[0])
                v = int(np.searchsorted(self.indptr, first, side="right")) - 1
                if steps[first] == 0:
                    raise ValueError(f"neighbor list of node {v} has duplicates")
                raise ValueError(f"neighbor list of node {v} is not sorted")
        if not self.directed:
            # Symmetry: total out-degree must equal total in-degree per node.
            counts = np.bincount(self.indices, minlength=self.n_nodes)
            if not np.array_equal(counts, self._degree):
                raise ValueError("undirected graph is not symmetric")

    @classmethod
    def from_edges(
        cls,
        n_nodes: int,
        edges: Iterable[tuple[int, int]] | np.ndarray,
        weights: Iterable[float] | np.ndarray | None = None,
        *,
        directed: bool = False,
        node_labels: np.ndarray | None = None,
        dedup: bool = True,
    ) -> "CSRGraph":
        """Build a graph from an edge list.

        For undirected graphs each input edge {u, v} is symmetrized; self
        loops are kept as a single arc per direction. Duplicate edges are
        merged (weights summed) when ``dedup`` is True.
        """
        check_positive("n_nodes", n_nodes, integer=True)
        edges = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if edges.size == 0:
            edges = edges.reshape(0, 2)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError("edges must be an (m, 2) array of node pairs")
        edges = edges.astype(np.int64, copy=False)
        if edges.size and (edges.min() < 0 or edges.max() >= n_nodes):
            raise ValueError("edge endpoints out of range")

        if weights is None:
            w = np.ones(edges.shape[0], dtype=np.float64)
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape[0] != edges.shape[0]:
                raise ValueError("weights must align with edges")

        if not directed:
            loops = edges[:, 0] == edges[:, 1]
            sym = edges[~loops][:, ::-1]
            edges = np.concatenate([edges, sym], axis=0)
            w = np.concatenate([w, w[~loops]], axis=0)

        order = np.lexsort((edges[:, 1], edges[:, 0]))
        edges = edges[order]
        w = w[order]

        if dedup and edges.shape[0]:
            keep = np.ones(edges.shape[0], dtype=bool)
            same = np.all(edges[1:] == edges[:-1], axis=1)
            keep[1:] = ~same
            # merge weights of collapsed duplicates
            group = np.cumsum(keep) - 1
            merged_w = np.zeros(int(group[-1]) + 1, dtype=np.float64)
            np.add.at(merged_w, group, w)
            edges = edges[keep]
            w = merged_w

        indptr = np.zeros(n_nodes + 1, dtype=np.int64)
        if edges.shape[0]:
            counts = np.bincount(edges[:, 0], minlength=n_nodes)
            indptr[1:] = np.cumsum(counts)
        return cls(
            indptr,
            edges[:, 1].copy(),
            w,
            directed=directed,
            node_labels=node_labels,
            validate=True,
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def n_nodes(self) -> int:
        return self.indptr.shape[0] - 1

    @property
    def n_arcs(self) -> int:
        """Number of stored arcs (2x the edge count for undirected graphs)."""
        return int(self.indptr[-1])

    @property
    def n_edges(self) -> int:
        """Number of logical edges (undirected edges counted once)."""
        if self.directed:
            return self.n_arcs
        loops = int(np.sum(self.indices == np.repeat(np.arange(self.n_nodes), self._degree)))
        return (self.n_arcs - loops) // 2 + loops

    def degree(self, v: int | None = None):
        """Degree of node ``v`` or the full degree vector."""
        if v is None:
            return self._degree
        return int(self._degree[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor ids of ``v`` — a zero-copy view."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Edge weights aligned with :meth:`neighbors` — a zero-copy view."""
        return self.weights[self.indptr[v] : self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """O(log deg(u)) membership query via binary search on the row."""
        row = self.neighbors(u)
        i = np.searchsorted(row, v)
        return bool(i < row.shape[0] and row[i] == v)

    def has_edges(self, u: int, targets: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`has_edge` for many targets at once."""
        row = self.neighbors(u)
        targets = np.asarray(targets, dtype=np.int64)
        pos = np.searchsorted(row, targets)
        ok = pos < row.shape[0]
        out = np.zeros(targets.shape, dtype=bool)
        out[ok] = row[pos[ok]] == targets[ok]
        return out

    def edge_array(self, *, return_weights: bool = False):
        """Return an (m, 2) array of edges (optionally with their weights).

        For undirected graphs each edge appears once with ``u <= v``.
        """
        src = np.repeat(np.arange(self.n_nodes, dtype=np.int64), self._degree)
        pairs = np.stack([src, self.indices], axis=1)
        if self.directed:
            keep = slice(None)
        else:
            keep = pairs[:, 0] <= pairs[:, 1]
        if return_weights:
            return pairs[keep], self.weights[keep]
        return pairs[keep]

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        for u, v in self.edge_array():
            yield int(u), int(v)

    # ------------------------------------------------------------------ #
    # Incremental maintenance
    # ------------------------------------------------------------------ #

    def _row_positions(self, src: np.ndarray, col: np.ndarray) -> np.ndarray:
        """Absolute insertion position of each (src, col) arc, i.e. the
        number of existing arcs that sort before it.  ``src`` must be
        non-decreasing with sorted ``col`` within equal ``src`` runs (the
        global CSR order).  O(touched rows · log deg + delta)."""
        pos = np.empty(src.shape[0], dtype=np.int64)
        nodes, starts = np.unique(src, return_index=True)
        bounds = np.append(starts, src.shape[0])
        for i, node in enumerate(nodes):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            row = self.indices[self.indptr[node] : self.indptr[node + 1]]
            pos[lo:hi] = self.indptr[node] + np.searchsorted(row, col[lo:hi])
        return pos

    def insert_edges(
        self,
        edges: np.ndarray,
        weights: Iterable[float] | np.ndarray | None = None,
        *,
        validate: bool = False,
    ) -> "CSRGraph":
        """A new graph with ``edges`` merged in — no re-sort of the existing
        arrays.

        The incremental counterpart of :meth:`from_edges`: the new batch is
        canonicalized (symmetrized for undirected graphs, sorted, in-batch
        duplicates merged) in O(delta log delta), its insertion points are
        found by per-touched-row binary search, and the merged
        indptr/indices/weights are produced by per-node insertion counts
        plus one concatenate/scatter pass.  No O(arcs log arcs) sort ever
        runs, so the cost is O(delta + touched adjacency) work on top of a
        flat vectorized copy of the backing arrays.

        An inserted edge that already exists has its weight *added* to the
        existing arc (the :meth:`from_edges` ``dedup`` merge rule), so
        ``g.insert_edges(batch)`` equals
        ``CSRGraph.from_edges(n, concat(g_edges, batch))`` arc for arc —
        bit-identical indptr/indices, and bit-identical weights on the
        unweighted (all-1.0) graphs the dynamic engine grows.

        ``validate=False`` (default) skips the O(arcs) full re-validation:
        the merge preserves sortedness and symmetry by construction.
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if edges.shape[0] == 0:
            return self
        if edges.min() < 0 or edges.max() >= self.n_nodes:
            raise ValueError("edge endpoints out of range")
        if weights is None:
            w = np.ones(edges.shape[0], dtype=np.float64)
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape[0] != edges.shape[0]:
                raise ValueError("weights must align with edges")

        if not self.directed:
            loops = edges[:, 0] == edges[:, 1]
            edges = np.concatenate([edges, edges[~loops][:, ::-1]], axis=0)
            w = np.concatenate([w, w[~loops]], axis=0)

        order = np.lexsort((edges[:, 1], edges[:, 0]))
        src, col, w = edges[order, 0], edges[order, 1], w[order]
        # merge in-batch duplicates (same rule as from_edges dedup)
        if src.shape[0] > 1:
            keep = np.ones(src.shape[0], dtype=bool)
            keep[1:] = (src[1:] != src[:-1]) | (col[1:] != col[:-1])
            group = np.cumsum(keep) - 1
            merged_w = np.zeros(int(group[-1]) + 1, dtype=np.float64)
            np.add.at(merged_w, group, w)
            src, col, w = src[keep], col[keep], merged_w

        pos = self._row_positions(src, col)
        dup = np.zeros(src.shape[0], dtype=bool)
        # an arc is a duplicate only if its insertion point lands *within its
        # own row* on an equal column (pos == indptr[src+1] means end-of-row,
        # where indices[pos] belongs to the next node)
        in_row = pos < self.indptr[src + 1]
        dup[in_row] = self.indices[pos[in_row]] == col[in_row]

        new_w = self.weights.copy()
        if np.any(dup):
            np.add.at(new_w, pos[dup], w[dup])
            src, col, w, pos = src[~dup], col[~dup], w[~dup], pos[~dup]

        counts = np.bincount(src, minlength=self.n_nodes).astype(np.int64)
        indptr = self.indptr + np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(counts))
        )
        total = self.indices.shape[0] + src.shape[0]
        # final slot of new arc i: its old insertion point shifted by the
        # i new arcs that land before it (batch is globally sorted)
        at = pos + np.arange(src.shape[0], dtype=np.int64)
        new_mask = np.zeros(total, dtype=bool)
        new_mask[at] = True
        indices = np.empty(total, dtype=np.int64)
        indices[at] = col
        indices[~new_mask] = self.indices
        merged_weights = np.empty(total, dtype=np.float64)
        merged_weights[at] = w
        merged_weights[~new_mask] = new_w
        return CSRGraph(
            indptr,
            indices,
            merged_weights,
            directed=self.directed,
            node_labels=self.node_labels,
            validate=validate,
        )

    def subgraph_edges(self, keep: np.ndarray) -> "CSRGraph":
        """Graph on the same node set containing only edges flagged ``keep``.

        ``keep`` is a boolean mask aligned with :meth:`edge_array` (undirected
        edges once). Used by the dynamic "seq" scenario to carve the initial
        forest out of the full graph.
        """
        edges = self.edge_array()
        keep = np.asarray(keep, dtype=bool)
        if keep.shape[0] != edges.shape[0]:
            raise ValueError("keep mask must align with edge_array()")
        return CSRGraph.from_edges(
            self.n_nodes,
            edges[keep],
            directed=self.directed,
            node_labels=self.node_labels,
        )

    # ------------------------------------------------------------------ #
    # Dunder / description
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self.directed == other.directed
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.allclose(self.weights, other.weights)
        )

    def __hash__(self):  # pragma: no cover - graphs are not hashable
        raise TypeError("CSRGraph is not hashable")

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return f"CSRGraph(n_nodes={self.n_nodes}, n_edges={self.n_edges}, {kind})"
