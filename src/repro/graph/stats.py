"""Graph statistics — surrogate validation and dataset characterization.

Used by the dataset tests and the Table 1 report to verify that the DC-SBM
surrogates carry the structural properties the experiments depend on:
label homophily (community recoverability), degree skew (the Amazon
co-purchase graphs are heavy-tailed), and clustering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.rng import as_generator

__all__ = [
    "edge_homophily",
    "degree_statistics",
    "clustering_coefficient",
    "GraphSummary",
    "summarize",
]


def edge_homophily(graph: CSRGraph) -> float:
    """Fraction of edges whose endpoints share a label."""
    if graph.node_labels is None:
        raise ValueError("graph has no node labels")
    edges = graph.edge_array()
    if edges.shape[0] == 0:
        return 0.0
    labels = graph.node_labels
    return float(np.mean(labels[edges[:, 0]] == labels[edges[:, 1]]))


def degree_statistics(graph: CSRGraph) -> dict[str, float]:
    """Mean/median/max degree and a tail-heaviness indicator.

    ``tail_ratio`` = p99 / median — near 1 for regular graphs, large for
    power-law graphs (the Amazon surrogates sit well above 3).
    """
    deg = graph.degree().astype(np.float64)
    med = float(np.median(deg))
    return {
        "mean": float(deg.mean()),
        "median": med,
        "max": float(deg.max()),
        "p99": float(np.percentile(deg, 99)),
        "tail_ratio": float(np.percentile(deg, 99) / max(med, 1.0)),
    }


def clustering_coefficient(graph: CSRGraph, *, sample: int | None = None, seed=0) -> float:
    """Mean local clustering coefficient (triangle density around nodes).

    Exact per sampled node: counts neighbor pairs that are themselves
    adjacent using the CSR binary-search membership query.  ``sample``
    bounds the cost on big graphs.
    """
    n = graph.n_nodes
    nodes = np.arange(n)
    if sample is not None and sample < n:
        nodes = as_generator(seed).choice(n, size=sample, replace=False)
    coeffs = []
    for v in nodes:
        nbrs = graph.neighbors(int(v))
        nbrs = nbrs[nbrs != v]
        k = nbrs.shape[0]
        if k < 2:
            coeffs.append(0.0)
            continue
        links = 0
        for i in range(k):
            links += int(graph.has_edges(int(nbrs[i]), nbrs[i + 1 :]).sum())
        coeffs.append(2.0 * links / (k * (k - 1)))
    return float(np.mean(coeffs)) if coeffs else 0.0


@dataclass(frozen=True)
class GraphSummary:
    """One-line structural fingerprint of a graph."""

    n_nodes: int
    n_edges: int
    n_classes: int | None
    homophily: float | None
    mean_degree: float
    tail_ratio: float
    clustering: float


def summarize(graph: CSRGraph, *, clustering_sample: int = 500, seed=0) -> GraphSummary:
    deg = degree_statistics(graph)
    has_labels = graph.node_labels is not None
    return GraphSummary(
        n_nodes=graph.n_nodes,
        n_edges=graph.n_edges,
        n_classes=int(graph.node_labels.max()) + 1 if has_labels else None,
        homophily=edge_homophily(graph) if has_labels else None,
        mean_degree=deg["mean"],
        tail_ratio=deg["tail_ratio"],
        clustering=clustering_coefficient(graph, sample=clustering_sample, seed=seed),
    )
