"""Table 1 dataset surrogates.

The evaluation graphs of the paper (Cora, Amazon Photo, Amazon Electronics
Computers) cannot be downloaded in this offline environment, so each is
replaced by a degree-corrected SBM surrogate with the same node count, edge
count and class count (see DESIGN.md §1).  A loader for the real Cora files
is provided in :mod:`repro.graph.io` and takes precedence when files exist.

Every surrogate accepts ``scale`` ∈ (0, 1]: node and edge counts shrink
proportionally so that accuracy experiments can run in CI-friendly time while
keeping the same density and class structure.  EXPERIMENTS.md records the
scale used for each committed number.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.csr import CSRGraph
from repro.graph.generators import degree_corrected_sbm

__all__ = [
    "DatasetSpec",
    "PAPER_DATASETS",
    "cora_like",
    "amazon_photo_like",
    "amazon_computers_like",
    "load_dataset",
    "dataset_names",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one evaluation dataset (paper Table 1)."""

    name: str
    short: str  # the paper's figure abbreviation ("cora", "ampt", "amcp")
    n_nodes: int
    n_edges: int
    n_classes: int
    homophily: float  # surrogate knob: fraction of intra-class endpoints
    degree_exponent: float | None  # heavy-tail knob; None = near-uniform

    @property
    def avg_degree(self) -> float:
        return 2.0 * self.n_edges / self.n_nodes

    def scaled(self, scale: float) -> "DatasetSpec":
        """Spec with node/edge counts multiplied by ``scale`` (density kept)."""
        if not 0 < scale <= 1:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        if scale == 1.0:
            return self
        n = max(self.n_classes * 8, int(round(self.n_nodes * scale)))
        m = max(n, int(round(self.n_edges * scale)))
        return DatasetSpec(
            name=f"{self.name}@{scale:g}",
            short=self.short,
            n_nodes=n,
            n_edges=m,
            n_classes=self.n_classes,
            homophily=self.homophily,
            degree_exponent=self.degree_exponent,
        )

    def generate(self, *, seed=None) -> CSRGraph:
        """Materialize the surrogate graph (labels attached)."""
        return degree_corrected_sbm(
            self.n_nodes,
            self.n_classes,
            avg_degree=self.avg_degree,
            homophily=self.homophily,
            degree_exponent=self.degree_exponent,
            seed=seed,
        )


# Table 1 of the paper. Homophily values chosen so one-vs-rest logistic
# regression on node2vec embeddings lands in the same accuracy regime the
# paper reports (high-F1, community-recoverable graphs); citation networks
# (Cora) have near-uniform degrees, co-purchase graphs are heavy-tailed.
PAPER_DATASETS: dict[str, DatasetSpec] = {
    "cora": DatasetSpec(
        name="cora",
        short="cora",
        n_nodes=2708,
        n_edges=5429,
        n_classes=7,
        homophily=0.81,
        degree_exponent=None,
    ),
    "amazon_photo": DatasetSpec(
        name="amazon_photo",
        short="ampt",
        n_nodes=7650,
        n_edges=143663,
        n_classes=8,
        homophily=0.83,
        degree_exponent=2.7,
    ),
    "amazon_computers": DatasetSpec(
        name="amazon_computers",
        short="amcp",
        n_nodes=13752,
        n_edges=287209,
        n_classes=10,
        homophily=0.78,
        degree_exponent=2.6,
    ),
}


def dataset_names() -> list[str]:
    return list(PAPER_DATASETS)


def cora_like(*, scale: float = 1.0, seed=0) -> CSRGraph:
    """Cora surrogate: 2708 nodes / 5429 edges / 7 classes at scale=1."""
    return PAPER_DATASETS["cora"].scaled(scale).generate(seed=seed)


def amazon_photo_like(*, scale: float = 1.0, seed=0) -> CSRGraph:
    """Amazon Photo surrogate: 7650 / 143663 / 8 at scale=1."""
    return PAPER_DATASETS["amazon_photo"].scaled(scale).generate(seed=seed)


def amazon_computers_like(*, scale: float = 1.0, seed=0) -> CSRGraph:
    """Amazon Electronics Computers surrogate: 13752 / 287209 / 10 at scale=1."""
    return PAPER_DATASETS["amazon_computers"].scaled(scale).generate(seed=seed)


def load_dataset(name: str, *, scale: float = 1.0, seed=0) -> CSRGraph:
    """Load a Table 1 surrogate by name ('cora' | 'amazon_photo' |
    'amazon_computers', paper abbreviations 'ampt'/'amcp' also accepted)."""
    aliases = {"ampt": "amazon_photo", "amcp": "amazon_computers"}
    key = aliases.get(name, name)
    if key not in PAPER_DATASETS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(PAPER_DATASETS)} "
            f"(+ aliases {sorted(aliases)})"
        )
    return PAPER_DATASETS[key].scaled(scale).generate(seed=seed)
