"""Graph substrate: CSR graphs, generators, Table 1 dataset surrogates,
connectivity, and dynamic edge-insertion streams."""

from repro.graph.components import (
    ForestSplit,
    connected_components,
    forest_split,
    n_connected_components,
    spanning_forest_mask,
)
from repro.graph.csr import CSRGraph
from repro.graph.datasets import (
    PAPER_DATASETS,
    DatasetSpec,
    amazon_computers_like,
    amazon_photo_like,
    cora_like,
    dataset_names,
    load_dataset,
)
from repro.graph.dynamic import DynamicGraph, EdgeEvent, edge_stream
from repro.graph.generators import (
    barabasi_albert,
    degree_corrected_sbm,
    erdos_renyi,
    planted_partition,
    random_tree,
    ring_of_cliques,
)
from repro.graph.io import load_cora, load_edge_list, save_edge_list
from repro.graph.stats import (
    GraphSummary,
    clustering_coefficient,
    degree_statistics,
    edge_homophily,
    summarize,
)

__all__ = [
    "CSRGraph",
    "connected_components",
    "n_connected_components",
    "spanning_forest_mask",
    "forest_split",
    "ForestSplit",
    "DynamicGraph",
    "EdgeEvent",
    "edge_stream",
    "erdos_renyi",
    "barabasi_albert",
    "random_tree",
    "planted_partition",
    "degree_corrected_sbm",
    "ring_of_cliques",
    "DatasetSpec",
    "PAPER_DATASETS",
    "cora_like",
    "amazon_photo_like",
    "amazon_computers_like",
    "load_dataset",
    "dataset_names",
    "save_edge_list",
    "load_edge_list",
    "load_cora",
    "edge_homophily",
    "degree_statistics",
    "clustering_coefficient",
    "GraphSummary",
    "summarize",
]
