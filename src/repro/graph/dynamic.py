"""Dynamic graphs: edge-insertion streams over immutable CSR snapshots.

The paper's target deployment is an IoT edge device observing a *growing*
graph (new social links, new co-purchases).  ``DynamicGraph`` models this as
a mutable edge set with cheap incremental insertion plus on-demand CSR
snapshots, so the walk engine always works on a consistent immutable view.

:meth:`DynamicGraph.walk_tasks` bridges into the streaming engine: it turns
an :class:`EdgeEvent` stream into the lazy
:class:`~repro.parallel.tasks.WalkTask` stream that
:func:`repro.parallel.train_parallel` consumes, so scenario replay shares
the bounded-prefetch walk→train pipeline with static training.

Rebuilding CSR on every snapshot is O(n + m); the "seq" scenario batches
insertions (``edges_per_event``) so snapshot cost is amortized the way the
paper's host CPU batches DMA transfers.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["DynamicGraph", "EdgeEvent", "edge_stream"]


class EdgeEvent:
    """One insertion event: a batch of edges added at the same step."""

    __slots__ = ("step", "edges")

    def __init__(self, step: int, edges: np.ndarray):
        self.step = int(step)
        self.edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)

    @property
    def touched_nodes(self) -> np.ndarray:
        """Unique endpoints of this batch — walk starts for the 'seq' scenario
        (the paper starts a random walk "from both the ends of an added
        edge")."""
        return np.unique(self.edges)

    def __repr__(self) -> str:
        return f"EdgeEvent(step={self.step}, n_edges={self.edges.shape[0]})"


class DynamicGraph:
    """A growing undirected graph with O(1) amortized edge insertion.

    Parameters
    ----------
    n_nodes:
        fixed node universe (the paper's scenarios add edges, not nodes).
    initial:
        optional starting graph (e.g. the spanning forest from
        :func:`repro.graph.components.forest_split`).
    node_labels:
        class labels carried onto every snapshot.
    """

    def __init__(
        self,
        n_nodes: int,
        *,
        initial: CSRGraph | None = None,
        node_labels: np.ndarray | None = None,
    ):
        if initial is not None and initial.n_nodes != n_nodes:
            raise ValueError("initial graph node count mismatch")
        self.n_nodes = int(n_nodes)
        self._edges: set[tuple[int, int]] = set()
        self.node_labels = node_labels
        if initial is not None:
            for u, v in initial.edge_array():
                self._edges.add(self._key(int(u), int(v)))
            if node_labels is None:
                self.node_labels = initial.node_labels
        self._snapshot: CSRGraph | None = None
        self._dirty = True

    @staticmethod
    def _key(u: int, v: int) -> tuple[int, int]:
        return (u, v) if u <= v else (v, u)

    # ------------------------------------------------------------------ #

    @property
    def n_edges(self) -> int:
        return len(self._edges)

    def has_edge(self, u: int, v: int) -> bool:
        return self._key(int(u), int(v)) in self._edges

    def add_edge(self, u: int, v: int) -> bool:
        """Insert one edge; returns False if it already existed."""
        u, v = int(u), int(v)
        if not (0 <= u < self.n_nodes and 0 <= v < self.n_nodes):
            raise ValueError(f"edge ({u}, {v}) out of range for n={self.n_nodes}")
        key = self._key(u, v)
        if key in self._edges:
            return False
        self._edges.add(key)
        self._dirty = True
        return True

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> int:
        """Insert a batch; returns the number of genuinely new edges."""
        added = 0
        for u, v in np.asarray(list(edges), dtype=np.int64).reshape(-1, 2):
            added += self.add_edge(int(u), int(v))
        return added

    def snapshot(self) -> CSRGraph:
        """Immutable CSR view of the current edge set (cached until dirty)."""
        if self._dirty or self._snapshot is None:
            edges = (
                np.asarray(sorted(self._edges), dtype=np.int64)
                if self._edges
                else np.empty((0, 2), dtype=np.int64)
            )
            self._snapshot = CSRGraph.from_edges(
                self.n_nodes, edges, node_labels=self.node_labels
            )
            self._dirty = False
        return self._snapshot

    def apply(self, event: "EdgeEvent") -> CSRGraph:
        """Insert one event's edge batch and return the updated snapshot."""
        self.add_edges(event.edges)
        return self.snapshot()

    def walk_tasks(self, events, *, walks_per_endpoint: int = 1):
        """Turn an :class:`EdgeEvent` stream into the streaming engine's
        walk-task stream: apply each event, then emit one
        :class:`~repro.parallel.tasks.WalkTask` walking from every endpoint
        of the inserted batch (the paper starts a random walk "from both
        the ends of an added edge"; ``walks_per_endpoint`` tiles the starts
        like node2vec's r), tagged with the event step and carrying the
        post-insertion snapshot.

        The stream is lazy: snapshots materialize only as the pipeline's
        prefetch window pulls tasks, so at most a window's worth of
        snapshots is ever alive.
        """
        from repro.parallel.tasks import WalkTask  # runtime: keep graph layer light

        if walks_per_endpoint < 1:
            raise ValueError("walks_per_endpoint must be >= 1")
        for event in events:
            snap = self.apply(event)
            starts = np.tile(event.touched_nodes, int(walks_per_endpoint))
            yield WalkTask(starts=starts, epoch=event.step, graph=snap)

    def __repr__(self) -> str:
        return f"DynamicGraph(n_nodes={self.n_nodes}, n_edges={self.n_edges})"


def edge_stream(
    edges: np.ndarray, *, edges_per_event: int = 1, max_events: int | None = None
) -> Iterator[EdgeEvent]:
    """Chop a replay edge list into :class:`EdgeEvent` batches.

    ``edges_per_event=1`` reproduces the paper's one-edge-at-a-time protocol;
    larger batches are the documented scale knob for the quick profiles.
    ``max_events`` truncates the stream (quick profiles again).
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if edges_per_event < 1:
        raise ValueError("edges_per_event must be >= 1")
    n_events = int(np.ceil(edges.shape[0] / edges_per_event))
    if max_events is not None:
        n_events = min(n_events, max_events)
    for k in range(n_events):
        lo = k * edges_per_event
        hi = min(lo + edges_per_event, edges.shape[0])
        yield EdgeEvent(step=k, edges=edges[lo:hi])
