"""Dynamic graphs: edge-insertion streams over immutable CSR snapshots.

The paper's target deployment is an IoT edge device observing a *growing*
graph (new social links, new co-purchases).  ``DynamicGraph`` models this as
incrementally-maintained CSR state plus a pending-insertion buffer, so the
walk engine always works on a consistent immutable view.

:meth:`DynamicGraph.walk_tasks` bridges into the streaming engine: it turns
an :class:`EdgeEvent` stream into the lazy
:class:`~repro.parallel.tasks.WalkTask` stream that
:func:`repro.parallel.train_parallel` consumes, so scenario replay shares
the bounded-prefetch walk→train pipeline with static training.  Each task
additionally carries the event's *delta* (the canonical batch of genuinely
new edges), which is what lets the pipeline's snapshot transport ship
O(delta) bytes per event instead of a full snapshot.

Snapshots are maintained incrementally: :meth:`snapshot` merges the pending
batch into the previous CSR via :meth:`~repro.graph.csr.CSRGraph.insert_edges`
(per-node insertion counts + one concatenate/scatter pass), so per-event
cost is O(delta + touched adjacency) on top of a flat vectorized copy —
no O(edges log edges) re-sort, no Python-level edge-set iteration.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["DynamicGraph", "EdgeEvent", "edge_stream"]


class EdgeEvent:
    """One insertion event: a batch of edges added at the same step."""

    __slots__ = ("step", "edges")

    def __init__(self, step: int, edges: np.ndarray):
        self.step = int(step)
        self.edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)

    @property
    def touched_nodes(self) -> np.ndarray:
        """Unique endpoints of this batch — walk starts for the 'seq' scenario
        (the paper starts a random walk "from both the ends of an added
        edge")."""
        return np.unique(self.edges)

    def __repr__(self) -> str:
        return f"EdgeEvent(step={self.step}, n_edges={self.edges.shape[0]})"


class DynamicGraph:
    """A growing undirected graph with O(delta) insertion and snapshots.

    Parameters
    ----------
    n_nodes:
        fixed node universe (the paper's scenarios add edges, not nodes).
    initial:
        optional starting graph (e.g. the spanning forest from
        :func:`repro.graph.components.forest_split`).
    node_labels:
        class labels carried onto every snapshot.

    State is the current immutable CSR snapshot plus a buffer of pending
    canonical insertions; :meth:`snapshot` merges the buffer with one
    vectorized :meth:`~repro.graph.csr.CSRGraph.insert_edges` pass.
    Membership queries cover both the merged CSR (binary search) and the
    pending buffer (sorted compound keys), so the pre-CSR edge-set
    semantics are preserved exactly.
    """

    def __init__(
        self,
        n_nodes: int,
        *,
        initial: CSRGraph | None = None,
        node_labels: np.ndarray | None = None,
    ):
        if initial is not None and initial.n_nodes != n_nodes:
            raise ValueError("initial graph node count mismatch")
        self.n_nodes = int(n_nodes)
        self.node_labels = node_labels
        if initial is not None and node_labels is None:
            self.node_labels = initial.node_labels

        if initial is None:
            self._csr = CSRGraph(
                np.zeros(self.n_nodes + 1, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                node_labels=self.node_labels,
                validate=False,
            )
        elif initial.directed or initial.node_labels is not self.node_labels:
            # re-home onto this graph's labels (zero-copy for the arrays);
            # a directed initial is symmetrized once, here
            self._csr = (
                CSRGraph.from_edges(
                    self.n_nodes, initial.edge_array(), node_labels=self.node_labels
                )
                if initial.directed
                else CSRGraph(
                    initial.indptr,
                    initial.indices,
                    initial.weights,
                    node_labels=self.node_labels,
                    validate=False,
                )
            )
        else:
            self._csr = initial
        self._n_edges = self._csr.n_edges
        #: canonical (u <= v, lexsorted, deduped) new-edge batches not yet
        #: merged into the CSR, and their sorted compound keys for O(log)
        #: membership.  Keys are u * n_nodes + v — int64-safe for any node
        #: universe below ~3e9 (far beyond this engine's target scale).
        self._pending: list[np.ndarray] = []
        self._pending_keys = np.empty(0, dtype=np.int64)

    def _keys(self, edges: np.ndarray) -> np.ndarray:
        return edges[:, 0] * np.int64(self.n_nodes) + edges[:, 1]

    # ------------------------------------------------------------------ #

    @property
    def n_edges(self) -> int:
        return int(self._n_edges)

    def has_edge(self, u: int, v: int) -> bool:
        u, v = (int(u), int(v)) if u <= v else (int(v), int(u))
        if self._csr.has_edge(u, v):
            return True
        key = np.int64(u) * np.int64(self.n_nodes) + np.int64(v)
        i = np.searchsorted(self._pending_keys, key)
        return bool(i < self._pending_keys.shape[0] and self._pending_keys[i] == key)

    def add_edge(self, u: int, v: int) -> bool:
        """Insert one edge; returns False if it already existed."""
        return self.add_edges(np.array([[u, v]], dtype=np.int64)) == 1

    def add_edges(self, edges: Iterable[tuple[int, int]] | np.ndarray) -> int:
        """Insert a batch; returns the number of genuinely new edges.

        One vectorized pass: range check, canonicalize to ``u <= v``,
        in-batch dedup via sorted compound keys, then drop edges already in
        the merged CSR (per-touched-row binary search) or in the pending
        buffer.  No per-edge Python loop.
        """
        return self._insert(edges).shape[0]

    def _insert(self, edges: Iterable[tuple[int, int]] | np.ndarray) -> np.ndarray:
        """Vectorized insertion; returns the canonical (d, 2) array of
        genuinely new edges (``u <= v``, lexsorted) this call added."""
        edges = np.asarray(
            edges if isinstance(edges, np.ndarray) else list(edges), dtype=np.int64
        ).reshape(-1, 2)
        if edges.shape[0] == 0:
            return edges
        if edges.min() < 0 or edges.max() >= self.n_nodes:
            raise ValueError(
                f"edge batch out of range for n={self.n_nodes}: "
                f"ids span [{edges.min()}, {edges.max()}]"
            )
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        canon = np.stack([lo, hi], axis=1)
        canon = canon[np.lexsort((canon[:, 1], canon[:, 0]))]
        keys = self._keys(canon)
        if keys.shape[0] > 1:
            keep = np.ones(keys.shape[0], dtype=bool)
            keep[1:] = keys[1:] != keys[:-1]
            canon, keys = canon[keep], keys[keep]

        # drop edges already merged into the CSR (touched rows only)
        present = np.zeros(canon.shape[0], dtype=bool)
        nodes, starts = np.unique(canon[:, 0], return_index=True)
        bounds = np.append(starts, canon.shape[0])
        for i, node in enumerate(nodes):
            s = slice(int(bounds[i]), int(bounds[i + 1]))
            present[s] = self._csr.has_edges(int(node), canon[s, 1])
        # ... and edges already waiting in the pending buffer
        if self._pending_keys.shape[0]:
            idx = np.searchsorted(self._pending_keys, keys)
            ok = idx < self._pending_keys.shape[0]
            pending_dup = np.zeros(canon.shape[0], dtype=bool)
            pending_dup[ok] = self._pending_keys[idx[ok]] == keys[ok]
            present |= pending_dup

        new = canon[~present]
        if new.shape[0]:
            self._pending.append(new)
            self._pending_keys = np.union1d(self._pending_keys, keys[~present])
            self._n_edges += new.shape[0]
        return new

    def snapshot(self) -> CSRGraph:
        """Immutable CSR view of the current edge set.

        Pending insertions merge incrementally
        (:meth:`~repro.graph.csr.CSRGraph.insert_edges`: per-node insertion
        counts + one concatenate/scatter pass); with nothing pending the
        cached snapshot object is returned as-is."""
        if self._pending:
            self._csr = self._csr.insert_edges(self._drain_pending())
        return self._csr

    def _drain_pending(self) -> np.ndarray:
        delta = (
            self._pending[0]
            if len(self._pending) == 1
            else np.concatenate(self._pending)
        )
        self._pending = []
        self._pending_keys = np.empty(0, dtype=np.int64)
        return delta

    def apply(self, event: "EdgeEvent") -> CSRGraph:
        """Insert one event's edge batch and return the updated snapshot."""
        self.add_edges(event.edges)
        return self.snapshot()

    def apply_delta(self, event: "EdgeEvent") -> tuple[CSRGraph, np.ndarray]:
        """Insert one event's batch; return ``(snapshot, delta)`` where
        ``delta`` is the canonical (d, 2) batch of genuinely new edges such
        that ``snapshot == previous_snapshot.insert_edges(delta)`` — the
        O(delta) payload the snapshot transport ships instead of the graph.

        ``delta`` covers *everything* merged by this snapshot (any edges
        added since the previous snapshot ride along), so the identity
        holds even when :meth:`add_edges` calls interleave with events.
        """
        self.add_edges(event.edges)
        if not self._pending:
            return self._csr, np.empty((0, 2), dtype=np.int64)
        delta = self._drain_pending()
        self._csr = self._csr.insert_edges(delta)
        return self._csr, delta

    def walk_tasks(self, events, *, walks_per_endpoint: int = 1):
        """Turn an :class:`EdgeEvent` stream into the streaming engine's
        walk-task stream: apply each event, then emit one
        :class:`~repro.parallel.tasks.WalkTask` walking from every endpoint
        of the inserted batch (the paper starts a random walk "from both
        the ends of an added edge"; ``walks_per_endpoint`` tiles the starts
        like node2vec's r), tagged with the event step and carrying the
        post-insertion snapshot *and* its delta — the per-event new-edge
        batch the pipeline's snapshot transport ships instead of the full
        graph (O(delta) bytes per event; see
        :class:`repro.parallel.snapshots.SnapshotStore`).

        The stream is lazy: snapshots materialize only as the pipeline's
        prefetch window pulls tasks, so at most a window's worth of
        snapshots is ever alive.
        """
        from repro.parallel.tasks import WalkTask  # runtime: keep graph layer light

        if walks_per_endpoint < 1:
            raise ValueError("walks_per_endpoint must be >= 1")
        for event in events:
            snap, delta = self.apply_delta(event)
            starts = np.tile(event.touched_nodes, int(walks_per_endpoint))
            yield WalkTask(starts=starts, epoch=event.step, graph=snap, delta=delta)

    def __repr__(self) -> str:
        return f"DynamicGraph(n_nodes={self.n_nodes}, n_edges={self.n_edges})"


def edge_stream(
    edges: np.ndarray, *, edges_per_event: int = 1, max_events: int | None = None
) -> Iterator[EdgeEvent]:
    """Chop a replay edge list into :class:`EdgeEvent` batches.

    ``edges_per_event=1`` reproduces the paper's one-edge-at-a-time protocol;
    larger batches are the documented scale knob for the quick profiles.
    ``max_events`` truncates the stream (quick profiles again).
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if edges_per_event < 1:
        raise ValueError("edges_per_event must be >= 1")
    n_events = int(np.ceil(edges.shape[0] / edges_per_event))
    if max_events is not None:
        n_events = min(n_events, max_events)
    for k in range(n_events):
        lo = k * edges_per_event
        hi = min(lo + edges_per_event, edges.shape[0])
        yield EdgeEvent(step=k, edges=edges[lo:hi])
