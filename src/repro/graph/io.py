"""Graph I/O: plain edge-list files and the real Cora format.

The surrogates in :mod:`repro.graph.datasets` are the default data source;
these loaders let a user with the real datasets on disk reproduce the paper
with them instead (``load_cora`` understands the classic
``cora.content``/``cora.cites`` pair from the LINQS distribution).
"""

from __future__ import annotations

import os

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["save_edge_list", "load_edge_list", "load_cora"]


def save_edge_list(graph: CSRGraph, path: str, *, with_labels: bool = True) -> None:
    """Write ``u v [weight]`` lines (undirected edges once); labels go to
    ``path.labels``.  The weight column is emitted only when some edge weight
    differs from 1, keeping files interoperable with plain edge-list tools."""
    edges, weights = graph.edge_array(return_weights=True)
    weighted = not np.allclose(weights, 1.0)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# n_nodes={graph.n_nodes}\n")
        for (u, v), w in zip(edges, weights, strict=True):
            if weighted:
                fh.write(f"{u} {v} {float(w)!r}\n")
            else:
                fh.write(f"{u} {v}\n")
    if with_labels and graph.node_labels is not None:
        np.savetxt(path + ".labels", graph.node_labels, fmt="%d")


def load_edge_list(path: str) -> CSRGraph:
    """Read a file written by :func:`save_edge_list`."""
    n_nodes = None
    edges: list[tuple[int, int]] = []
    weights: list[float] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if "n_nodes=" in line:
                    n_nodes = int(line.split("n_nodes=")[1])
                continue
            parts = line.split()
            edges.append((int(parts[0]), int(parts[1])))
            weights.append(float(parts[2]) if len(parts) > 2 else 1.0)
    if n_nodes is None:
        n_nodes = 1 + max(max(u, v) for u, v in edges) if edges else 0
    labels = None
    if os.path.exists(path + ".labels"):
        labels = np.loadtxt(path + ".labels", dtype=np.int64).reshape(-1)
    return CSRGraph.from_edges(
        n_nodes,
        np.asarray(edges, dtype=np.int64).reshape(-1, 2),
        weights=np.asarray(weights, dtype=np.float64),
        node_labels=labels,
    )


def load_cora(directory: str) -> CSRGraph:
    """Load the real Cora citation network if its files are present.

    Expects ``cora.content`` (``<paper_id> <1433 features> <class>``) and
    ``cora.cites`` (``<cited> <citing>``).  Citations are treated as
    undirected edges, matching the paper's use of Cora for node2vec.

    Raises ``FileNotFoundError`` when the files are absent, so callers can
    fall back to the surrogate.
    """
    content = os.path.join(directory, "cora.content")
    cites = os.path.join(directory, "cora.cites")
    if not (os.path.exists(content) and os.path.exists(cites)):
        raise FileNotFoundError(f"Cora files not found under {directory!r}")

    ids: list[str] = []
    classes: list[str] = []
    with open(content, "r", encoding="utf-8") as fh:
        for line in fh:
            parts = line.split()
            if len(parts) < 2:
                continue
            ids.append(parts[0])
            classes.append(parts[-1])
    id_map = {pid: i for i, pid in enumerate(ids)}
    class_names = sorted(set(classes))
    class_map = {c: i for i, c in enumerate(class_names)}
    labels = np.asarray([class_map[c] for c in classes], dtype=np.int64)

    edges: list[tuple[int, int]] = []
    with open(cites, "r", encoding="utf-8") as fh:
        for line in fh:
            parts = line.split()
            if len(parts) != 2:
                continue
            a, b = parts
            if a in id_map and b in id_map:
                edges.append((id_map[a], id_map[b]))
    return CSRGraph.from_edges(
        len(ids), np.asarray(edges, dtype=np.int64), node_labels=labels
    )
