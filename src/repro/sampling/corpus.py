"""Walk corpus → skip-gram training contexts.

A walk ``RW`` of length *l* is partitioned with a sliding window of size *w*
into ``l − w + 1`` contexts (the paper trains "over 73 iterations of the
outermost loop" for l=80, w=8).  Each context has:

* a **center** node: the window's first element (``node-u`` of Figure 1 —
  NS(u) is the forward-looking neighborhood collected by the walk started
  at/through u);
* ``w − 1`` **positive** nodes: the remaining window elements.

Each (center, positive) pair is one "window" iteration of Algorithm 1 lines
8–15: the positive plus ``ns`` negatives are trained against targets 1/0.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator, Sequence

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["WalkContexts", "contexts_from_walk", "corpus_contexts", "n_contexts"]


def n_contexts(walk_length: int, window: int) -> int:
    """Number of sliding windows in a walk (0 when the walk is too short)."""
    check_positive("walk_length", walk_length, integer=True)
    check_positive("window", window, integer=True)
    return max(0, walk_length - window + 1)


@dataclass(frozen=True)
class WalkContexts:
    """All contexts of one walk, in struct-of-arrays form.

    Attributes
    ----------
    centers:
        (C,) center node per context.
    positives:
        (C, w−1) positive nodes per context (the rest of each window).
    """

    centers: np.ndarray
    positives: np.ndarray

    @property
    def n(self) -> int:
        return self.centers.shape[0]

    @property
    def window(self) -> int:
        return self.positives.shape[1] + 1

    def __iter__(self) -> Iterator[tuple[int, np.ndarray]]:
        for i in range(self.n):
            yield int(self.centers[i]), self.positives[i]


def contexts_from_walk(walk: np.ndarray, window: int) -> WalkContexts:
    """Slide a ``window``-sized window over ``walk``.

    Walks shorter than the window produce zero contexts (the dynamic
    scenario can generate stubby walks from low-degree nodes).
    """
    check_positive("window", window, integer=True)
    if window < 2:
        raise ValueError("window must be >= 2 (needs at least one positive)")
    walk = np.asarray(walk, dtype=np.int64)
    c = n_contexts(walk.shape[0], window)
    if c == 0:
        return WalkContexts(
            centers=np.empty(0, dtype=np.int64),
            positives=np.empty((0, window - 1), dtype=np.int64),
        )
    # stride trick: windows[i] = walk[i : i + window], zero copies
    windows = np.lib.stride_tricks.sliding_window_view(walk, window)[:c]
    return WalkContexts(centers=windows[:, 0].copy(), positives=windows[:, 1:].copy())


def corpus_contexts(
    walks: Sequence[np.ndarray], window: int
) -> Iterator[WalkContexts]:
    """Contexts for every walk in a corpus, skipping walks with none."""
    for walk in walks:
        ctx = contexts_from_walk(walk, window)
        if ctx.n:
            yield ctx
