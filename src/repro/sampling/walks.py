"""Second-order (node2vec) random walks.

Implements Eq. (1) of the paper: from the current node ``u`` (arrived from
``t``), the un-normalized transition weight to neighbor ``x`` is
``α_pq(t, x) · w_ux`` with

* ``α = 1/p`` if ``x == t``          (return,   d_tx = 0)
* ``α = 1``   if ``x`` adjacent to t (stay,     d_tx = 1)
* ``α = 1/q`` otherwise              (explore,  d_tx = 2)

Three sampling strategies are provided:

``"exact"`` (default)
    per-step categorical over the current neighbor slice.  Fully vectorized
    per step, no precomputation; when ``q == 1`` (the paper's Table 2 value)
    the adjacency test vanishes and only the return bias remains, which is
    detected and fast-pathed.
``"alias"``
    per-(prev, cur) alias tables precomputed for the whole graph (the classic
    node2vec preprocessing).  Exact O(1) per step but O(Σ deg²) build cost —
    intended for small graphs; tests verify distributional equivalence with
    ``"exact"``.
``"rejection"``
    KnightKing-style rejection sampling: propose a weighted neighbor, accept
    with ratio α/α_max.  O(1) expected per step with no precomputation.

All strategies produce identical *distributions*; they differ only in cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sampling.alias import AliasTable
from repro.utils.rng import as_generator
from repro.utils.validation import check_in_set, check_positive

__all__ = ["Node2VecWalker", "WalkParams"]


@dataclass(frozen=True)
class WalkParams:
    """Random-walk hyper-parameters (paper Table 2 defaults)."""

    p: float = 0.5  # return parameter (α = 1/p on backtracking)
    q: float = 1.0  # in-out parameter (α = 1/q on exploration)
    length: int = 80  # l: length of a single random walk
    walks_per_node: int = 10  # r

    def __post_init__(self):
        check_positive("p", self.p)
        check_positive("q", self.q)
        check_positive("length", self.length, integer=True)
        check_positive("walks_per_node", self.walks_per_node, integer=True)


class Node2VecWalker:
    """Sampler of node2vec walks over a :class:`CSRGraph`.

    Parameters
    ----------
    graph:
        the (immutable) graph snapshot to walk on.
    params:
        :class:`WalkParams`; defaults to the paper's Table 2.
    strategy:
        ``"exact" | "alias" | "rejection"`` (see module docstring).
    seed:
        seed for the walker's internal stream; each walk advances it.
    """

    def __init__(
        self,
        graph: CSRGraph,
        params: WalkParams | None = None,
        *,
        strategy: str = "exact",
        seed=None,
    ):
        self.graph = graph
        self.params = params or WalkParams()
        check_in_set("strategy", strategy, ("exact", "alias", "rejection"))
        self.strategy = strategy
        self.rng = as_generator(seed)

        p, q = self.params.p, self.params.q
        self._unweighted = bool(np.allclose(graph.weights, 1.0))
        self._uniform_q = bool(q == 1.0)
        self._alpha_max = max(1.0 / p, 1.0, 1.0 / q)

        self._edge_alias: dict[tuple[int, int], AliasTable] | None = None
        self._node_alias: list[AliasTable | None] | None = None
        if strategy == "alias":
            self._build_alias_tables()
        elif strategy == "rejection":
            self._build_node_tables()

    # ------------------------------------------------------------------ #
    # Preprocessing
    # ------------------------------------------------------------------ #

    def _transition_weights(self, t: int, u: int) -> np.ndarray:
        """Un-normalized α_pq(t, x)·w_ux over the neighbors of ``u``."""
        g = self.graph
        nbrs = g.neighbors(u)
        w = g.neighbor_weights(u).copy()
        p, q = self.params.p, self.params.q
        if not self._uniform_q:
            alpha = np.full(nbrs.shape[0], 1.0 / q)
            alpha[g.has_edges(t, nbrs)] = 1.0
        else:
            alpha = np.ones(nbrs.shape[0])
        alpha[nbrs == t] = 1.0 / p
        return w * alpha

    def _build_alias_tables(self) -> None:
        """Per-(prev, cur) alias tables — the classic node2vec preprocessing."""
        g = self.graph
        tables: dict[tuple[int, int], AliasTable] = {}
        for u in range(g.n_nodes):
            for t in g.neighbors(u):
                tables[(int(t), u)] = AliasTable(self._transition_weights(int(t), u))
        self._edge_alias = tables

    def _build_node_tables(self) -> None:
        """First-order (weight-proportional) alias table per node, used as the
        proposal distribution by the rejection strategy."""
        g = self.graph
        tables: list[AliasTable | None] = []
        for u in range(g.n_nodes):
            w = g.neighbor_weights(u)
            tables.append(AliasTable(w) if w.size else None)
        self._node_alias = tables

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #

    def _first_step(self, start: int) -> int:
        """Weight-proportional first transition (no previous node yet)."""
        g = self.graph
        nbrs = g.neighbors(start)
        if nbrs.size == 0:
            return -1
        w = g.neighbor_weights(start)
        if self._unweighted:
            return int(nbrs[self.rng.integers(nbrs.size)])
        c = np.cumsum(w)
        return int(nbrs[np.searchsorted(c, self.rng.random() * c[-1], side="right")])

    def _step_exact(self, t: int, u: int) -> int:
        g = self.graph
        nbrs = g.neighbors(u)
        if nbrs.size == 0:
            return -1
        p = self.params.p
        if self._uniform_q and self._unweighted:
            # Fast path (the paper's q=1 on unweighted graphs): all neighbors
            # weight 1 except t at 1/p.  One bisect + at most two RNG calls.
            i_t = int(np.searchsorted(nbrs, t))
            has_t = i_t < nbrs.size and nbrs[i_t] == t
            if not has_t:
                return int(nbrs[self.rng.integers(nbrs.size)])
            rest = nbrs.size - 1
            w_t = 1.0 / p
            if self.rng.random() * (rest + w_t) < w_t:
                return t
            j = self.rng.integers(rest)
            return int(nbrs[j if j < i_t else j + 1])
        w = self._transition_weights(t, u)
        c = np.cumsum(w)
        return int(nbrs[np.searchsorted(c, self.rng.random() * c[-1], side="right")])

    def _step_alias(self, t: int, u: int) -> int:
        nbrs = self.graph.neighbors(u)
        if nbrs.size == 0:
            return -1
        table = self._edge_alias.get((t, u))
        if table is None:  # start node had no previous: fall back to exact
            return self._step_exact(t, u)
        return int(nbrs[table.sample(seed=self.rng)])

    def _step_rejection(self, t: int, u: int) -> int:
        g = self.graph
        nbrs = g.neighbors(u)
        if nbrs.size == 0:
            return -1
        p, q = self.params.p, self.params.q
        table = self._node_alias[u]
        while True:
            x = int(nbrs[table.sample(seed=self.rng)])
            if x == t:
                alpha = 1.0 / p
            elif self._uniform_q or g.has_edge(t, x):
                alpha = 1.0
            else:
                alpha = 1.0 / q
            if self.rng.random() * self._alpha_max <= alpha:
                return x

    def step(self, t: int, u: int) -> int:
        """One biased transition from ``u`` (previous node ``t``).

        Returns ``-1`` when ``u`` has no neighbors (walk truncates).
        """
        if self.strategy == "alias":
            return self._step_alias(t, u)
        if self.strategy == "rejection":
            return self._step_rejection(t, u)
        return self._step_exact(t, u)

    # ------------------------------------------------------------------ #
    # Walks
    # ------------------------------------------------------------------ #

    def walk(self, start: int) -> np.ndarray:
        """One walk of up to ``params.length`` nodes starting at ``start``.

        The walk truncates early at sink nodes (isolated / dangling); the
        returned array always begins with ``start``.
        """
        length = self.params.length
        out = np.empty(length, dtype=np.int64)
        out[0] = start
        if length == 1:
            return out
        nxt = self._first_step(start)
        if nxt < 0:
            return out[:1]
        out[1] = nxt
        filled = 2
        t, u = start, nxt
        for i in range(2, length):
            x = self.step(t, u)
            if x < 0:
                break
            out[i] = x
            filled = i + 1
            t, u = u, x
        return out[:filled]

    def walks_from(self, starts) -> list[np.ndarray]:
        """One walk per entry of ``starts`` (used by the 'seq' scenario which
        walks from both endpoints of each inserted edge)."""
        return [self.walk(int(s)) for s in np.asarray(starts, dtype=np.int64)]

    def simulate(self, *, shuffle: bool = True) -> list[np.ndarray]:
        """The paper's corpus: ``r`` walks from every node (Table 2: r=10).

        Nodes are shuffled between repetitions like the reference node2vec
        implementation so that SGD sees a mixed ordering.
        """
        n = self.graph.n_nodes
        walks: list[np.ndarray] = []
        for _ in range(self.params.walks_per_node):
            order = self.rng.permutation(n) if shuffle else np.arange(n)
            for v in order:
                walks.append(self.walk(int(v)))
        return walks
