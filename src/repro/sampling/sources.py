"""Negative-sampling *sources*: strategy objects behind ``negative_source``.

The paper builds its negative table from node frequencies over the entire
walk corpus (§3.1); the streaming pipeline cannot know those frequencies
before the last walk exists.  Each strategy for closing that gap used to be
an inline branch of ``train_parallel``; they are now first-class objects so
the pipeline (and the dynamic-graph replay driving it) can treat "where do
negatives come from" as a pluggable layer.

Protocol
--------
A source is a small stateful object the pipeline drives through three
hooks:

``bootstrap(graph)``
    called once before streaming starts; builds whatever initial state the
    strategy needs (a degree table, an empty count vector, …).
``observe(chunk_frequencies, n_walks)``
    called with the node-frequency vector of each consumed group of walks
    (``n_walks`` of them); folds the evidence into the source's state and
    returns the number of alias-table rebuilds it triggered (0 or 1) so the
    pipeline can account for them (``PipelineTelemetry.sampler_rebuilds``).
``sampler()``
    the :class:`~repro.sampling.negative.NegativeSampler` training should
    draw negatives from *right now* (``None`` while a bootstrap pass is
    still pending).

Two class attributes tell the pipeline how to schedule a source:

``bootstrap_mode``
    ``None`` — the sampler is ready right after :meth:`bootstrap` and
    training streams immediately; ``"buffer"`` — the first pass must be
    buffered and fed back after the counts are complete (the paper's exact
    construction); ``"count"`` — a dedicated counting pass must stream the
    corpus once before training streams it again.
``virtual_chunk``
    ``None`` — physical chunk boundaries are irrelevant to the source;
    an int ``V`` — the source folds evidence at *canonical virtual chunk*
    boundaries (every ``V`` consumed walks, counted globally), and the
    pipeline aligns its ``observe`` calls to those boundaries.  This is
    what pins ``"decayed"``'s determinism: the fold/rebuild schedule
    depends only on ``V``, never on worker count, transport or the
    physical ``chunk_size``.

Sources are single-use: one :meth:`bootstrap` per instance (a second call
raises), mirroring the fact that they accumulate per-run sampling state.

Registry
--------
``SOURCE_REGISTRY`` maps the public names to their classes and is the
single source of truth for the valid ``negative_source`` strings
(``NEGATIVE_SOURCES``), the validation error messages, and the rendered
API documentation — adding a strategy here is all it takes to expose it
everywhere.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.sampling.negative import NegativeSampler
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_set, check_positive

if TYPE_CHECKING:
    from repro.graph.csr import CSRGraph

__all__ = [
    "DEFAULT_VIRTUAL_CHUNK",
    "NEGATIVE_SOURCES",
    "SOURCE_REGISTRY",
    "CorpusSource",
    "DecayedSource",
    "DegreeSource",
    "NegativeSource",
    "TwoPassSource",
    "make_source",
    "resolve_source",
]

#: Canonical virtual chunk size (walks) used by :class:`DecayedSource`.
#: Deliberately a sampling-layer constant, decoupled from the pipeline's
#: physical ``chunk_size`` default: two runs agree bit-for-bit whenever
#: their *virtual* chunk size agrees, whatever their physical chunking.
DEFAULT_VIRTUAL_CHUNK = 256


class NegativeSource:
    """Base class / protocol for negative-sampling sources.

    Parameters
    ----------
    power, seed:
        smoothing exponent and RNG seed for the sampler(s) this source
        builds.  Either may be left ``None`` at construction; the pipeline
        fills unset knobs from its own ``negative_power`` argument and its
        deterministic sampler-seed draw via :meth:`configure`, so an
        explicitly-constructed source can pin its own values while
        registry-name usage inherits the run's.
    """

    #: registry name (class attribute, set by subclasses)
    name: str = "?"
    #: one-line trade-off summary rendered into the API docs
    summary: str = ""
    #: ``None`` | ``"buffer"`` | ``"count"`` (see module docstring)
    bootstrap_mode: str | None = None
    #: canonical virtual chunk size in walks, or ``None`` (see module docstring)
    virtual_chunk: int | None = None

    def __init__(self, *, power: float | None = None, seed: SeedLike = None):
        if power is not None:
            check_positive("power", power, strict=False)
        self.power = power
        self.seed = seed
        self._bootstrapped = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def fresh(self) -> "NegativeSource":
        """An unbootstrapped copy carrying the same construction knobs.

        The pipeline trains against a fresh copy of any user-supplied
        instance (see :func:`resolve_source`), so one configured source can
        parameterize many runs — e.g. the drift scenario's before/after
        training phases — without leaking per-run sampling state between
        them.
        """
        if self._bootstrapped:
            raise RuntimeError(
                f"cannot copy a bootstrapped {type(self).__name__}: construct "
                "a fresh source instead"
            )
        return copy.deepcopy(self)

    def configure(
        self, *, power: float | None = None, seed: SeedLike = None
    ) -> "NegativeSource":
        """Fill knobs left unset at construction (explicit values win)."""
        if self.power is None and power is not None:
            check_positive("power", power, strict=False)
            self.power = float(power)
        if self.seed is None and seed is not None:
            self.seed = seed
        return self

    def bootstrap(self, graph: CSRGraph) -> None:
        """Initialize per-run state from the starting ``graph`` snapshot."""
        if self._bootstrapped:
            raise RuntimeError(
                f"{type(self).__name__} instances are single-use: construct a "
                "fresh source per training run"
            )
        if self.power is None:
            self.power = 0.75
        self._bootstrapped = True
        self._bootstrap(graph)

    def _bootstrap(self, graph: CSRGraph) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Streaming
    # ------------------------------------------------------------------ #

    @property
    def wants_frequencies(self) -> bool:
        """Whether the pipeline should compute and feed chunk frequencies
        right now (False once a source's sampler is frozen — computing them
        would be pure overhead on the hot path)."""
        return False

    @property
    def pending_bootstrap(self) -> str | None:
        """The bootstrap pass the pipeline still owes this source
        (``None`` once the sampler exists / is finalized)."""
        return None

    def observe(self, chunk_frequencies: np.ndarray, n_walks: int) -> int:
        """Fold one consumed group's node frequencies; returns the number
        of alias-table rebuilds triggered (0 or 1)."""
        return 0

    def finalize(self) -> None:
        """Complete a pending bootstrap pass (counting sources only)."""

    def sampler(self) -> NegativeSampler | None:
        """The sampler training should currently draw from."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(power={self.power})"


class DegreeSource(NegativeSource):
    """Degree-proportional bootstrap — the stationary visit distribution of
    an unbiased walk, a close proxy for corpus frequency.  Training streams
    from the very first chunk; the distribution differs slightly from the
    paper's corpus construction."""

    name = "degree"
    summary = "degree-bootstrapped sampler; streams immediately, bounded memory"

    def _bootstrap(self, graph: CSRGraph) -> None:
        self._sampler = NegativeSampler.from_degrees(
            graph, power=self.power, seed=self.seed
        )

    def sampler(self) -> NegativeSampler | None:
        return self._sampler


class _CountingSource(NegativeSource):
    """Shared machinery of the two paper-exact sources: accumulate int64
    corpus frequencies during a bootstrap pass, then freeze one sampler."""

    def _bootstrap(self, graph: CSRGraph) -> None:
        self._counts = np.zeros(graph.n_nodes, dtype=np.int64)
        self._sampler: NegativeSampler | None = None

    @property
    def wants_frequencies(self) -> bool:
        return self._sampler is None

    @property
    def pending_bootstrap(self) -> str | None:
        return self.bootstrap_mode if self._sampler is None else None

    def observe(self, chunk_frequencies: np.ndarray, n_walks: int) -> int:
        if self._sampler is None:
            self._counts += chunk_frequencies
        return 0

    def finalize(self) -> None:
        if self._sampler is None:
            self._sampler = NegativeSampler(
                self._counts, power=self.power, seed=self.seed
            )

    def sampler(self) -> NegativeSampler | None:
        return self._sampler


class CorpusSource(_CountingSource):
    """The paper's construction, verbatim: buffer the whole first-epoch
    corpus, count frequencies over it, build the sampler, then train.
    Exact semantics; O(corpus) peak memory and no first-epoch overlap."""

    name = "corpus"
    summary = "paper-exact; buffers the first epoch, O(corpus) memory"
    bootstrap_mode = "buffer"


class TwoPassSource(_CountingSource):
    """A cheap counting pass streams the corpus once (walks discarded after
    counting), then a second identically-seeded pass streams the same walks
    into training — bit-identical to ``"corpus"`` with bounded memory, at
    twice the generation cost."""

    name = "two_pass"
    summary = "paper-exact and memory-bounded; generates the corpus twice"
    bootstrap_mode = "count"


class DecayedSource(NegativeSource):
    """Online source for streams whose node-visit distribution *moves*
    (the dynamic-graph replay): degree bootstrap, exponentially-decayed
    per-virtual-chunk frequency folding, alias rebuild every K folds.

    State per virtual chunk ``c`` (a canonical group of ``virtual_chunk``
    consecutive walks in global consumption order)::

        counts <- decay * counts + frequencies(chunk c)

    and every ``rebuild_every``-th fold the alias table is rebuilt from
    ``counts`` (a rebuild is O(n), so K trades fidelity against overhead).

    Determinism contract: the fold/rebuild schedule is pinned to the
    canonical virtual chunk size, so results are bit-identical across
    worker counts, transports and physical chunk sizes — but *not* across
    different ``virtual_chunk`` values.  ``"decayed"`` thereby relaxes the
    pipeline's bit-identity guarantee to fixed-virtual-chunking runs.

    Floor semantics are decay-aware: weights that have *decayed* below 1
    are used as-is (never re-floored up to 1), and genuinely unvisited
    zero-weight nodes get ``min(1, smallest positive weight)`` so they stay
    sample-able without outranking any node that carries real evidence.

    Parameters
    ----------
    decay:
        per-virtual-chunk retention factor in (0, 1].  1.0 never forgets
        (pure accumulation); smaller values track drift faster.
    rebuild_every:
        rebuild the alias table every this many folds (K).
    virtual_chunk:
        canonical fold granularity in walks (V).
    """

    name = "decayed"
    summary = (
        "online: degree bootstrap + exponentially-decayed streaming "
        "frequencies, alias rebuild every K virtual chunks"
    )

    def __init__(
        self,
        *,
        decay: float = 0.98,
        rebuild_every: int = 4,
        virtual_chunk: int = DEFAULT_VIRTUAL_CHUNK,
        power: float | None = None,
        seed: SeedLike = None,
    ):
        super().__init__(power=power, seed=seed)
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        check_positive("rebuild_every", rebuild_every, integer=True)
        check_positive("virtual_chunk", virtual_chunk, integer=True)
        self.decay = float(decay)
        self.rebuild_every = int(rebuild_every)
        self.virtual_chunk = int(virtual_chunk)

    def _bootstrap(self, graph: CSRGraph) -> None:
        self._counts = graph.degree().astype(np.float64)
        self._pending = np.zeros(graph.n_nodes, dtype=np.float64)
        self._pending_walks = 0
        self.folds = 0
        self.rebuilds = 0
        # One persistent stream across every rebuild: a rebuilt sampler
        # continues drawing where its predecessor stopped, so the negative
        # stream is a single deterministic sequence for the whole run.
        self._rng = as_generator(self.seed)
        self._build()

    def _build(self) -> None:
        counts = self._counts
        positive = counts > 0.0
        if positive.any():
            floor = min(1.0, float(counts[positive].min()))
            weights = np.where(positive, counts, floor)
        else:  # all-isolated graph: uniform
            weights = np.ones_like(counts)
        self._sampler = NegativeSampler(weights, power=self.power, seed=self._rng)

    @property
    def wants_frequencies(self) -> bool:
        return True

    def observe(self, chunk_frequencies: np.ndarray, n_walks: int) -> int:
        """Accumulate one boundary-aligned group; fold (and maybe rebuild)
        when the pending walk count completes a virtual chunk.

        The pipeline splits physical chunks at virtual boundaries, so
        ``pending`` reaches exactly ``virtual_chunk`` walks; an unaligned
        caller's oversized group is folded whole as one virtual chunk
        (still deterministic for a fixed call pattern).
        """
        self._pending += chunk_frequencies
        self._pending_walks += int(n_walks)
        if self._pending_walks < self.virtual_chunk:
            return 0
        self._counts = self.decay * self._counts + self._pending
        self._pending = np.zeros_like(self._pending)
        self._pending_walks = 0
        self.folds += 1
        if self.folds % self.rebuild_every == 0:
            self._build()
            self.rebuilds += 1
            return 1
        return 0

    def sampler(self) -> NegativeSampler | None:
        return self._sampler

    def __repr__(self) -> str:
        return (
            f"DecayedSource(decay={self.decay}, rebuild_every={self.rebuild_every}, "
            f"virtual_chunk={self.virtual_chunk}, power={self.power})"
        )


#: Single source of truth for the valid ``negative_source`` strategies:
#: the pipeline's validation, the API docs and the tests all render from
#: this registry.
SOURCE_REGISTRY: dict[str, type[NegativeSource]] = {
    cls.name: cls
    for cls in (CorpusSource, DegreeSource, TwoPassSource, DecayedSource)
}

#: Valid ``negative_source`` names, in registry order.
NEGATIVE_SOURCES = tuple(SOURCE_REGISTRY)


def make_source(name: str, **kwargs: Any) -> NegativeSource:
    """Instantiate a source by registry name, forwarding keyword knobs."""
    check_in_set("negative_source", name, NEGATIVE_SOURCES)
    return SOURCE_REGISTRY[name](**kwargs)


def resolve_source(spec: str | NegativeSource) -> NegativeSource:
    """Normalize a ``negative_source`` argument: a registry name becomes a
    fresh instance; an already-constructed :class:`NegativeSource` yields a
    :meth:`~NegativeSource.fresh` copy (the caller's knobs win over pipeline
    defaults, and the caller's instance is never mutated — it can
    parameterize any number of runs)."""
    if isinstance(spec, NegativeSource):
        return spec.fresh()
    if isinstance(spec, str):
        return make_source(spec)
    raise TypeError(
        "negative_source must be a NegativeSource instance or one of "
        f"{NEGATIVE_SOURCES}, got {spec!r}"
    )
