"""Sampling substrate: Walker's alias method, negative sampling, node2vec
second-order random walks, and window partitioning of walks into skip-gram
training contexts."""

from repro.sampling.alias import AliasTable
from repro.sampling.batched import BatchedWalker
from repro.sampling.corpus import (
    WalkContexts,
    contexts_from_walk,
    corpus_contexts,
    n_contexts,
)
from repro.sampling.negative import NegativeSampler, walk_frequencies
from repro.sampling.walks import Node2VecWalker, WalkParams

__all__ = [
    "AliasTable",
    "BatchedWalker",
    "NegativeSampler",
    "walk_frequencies",
    "Node2VecWalker",
    "WalkParams",
    "WalkContexts",
    "contexts_from_walk",
    "corpus_contexts",
    "n_contexts",
]
