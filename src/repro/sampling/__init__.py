"""Sampling substrate: Walker's alias method, negative sampling and the
pluggable negative-source strategy layer, node2vec second-order random
walks, and window partitioning of walks into skip-gram training contexts."""

from repro.sampling.alias import AliasTable
from repro.sampling.batched import BatchedWalker
from repro.sampling.corpus import (
    WalkContexts,
    contexts_from_walk,
    corpus_contexts,
    n_contexts,
)
from repro.sampling.negative import NegativeSampler, walk_frequencies
from repro.sampling.sources import (
    NEGATIVE_SOURCES,
    SOURCE_REGISTRY,
    CorpusSource,
    DecayedSource,
    DegreeSource,
    NegativeSource,
    TwoPassSource,
    make_source,
    resolve_source,
)
from repro.sampling.walks import Node2VecWalker, WalkParams

__all__ = [
    "AliasTable",
    "BatchedWalker",
    "NegativeSampler",
    "NEGATIVE_SOURCES",
    "SOURCE_REGISTRY",
    "NegativeSource",
    "CorpusSource",
    "DegreeSource",
    "TwoPassSource",
    "DecayedSource",
    "make_source",
    "resolve_source",
    "walk_frequencies",
    "Node2VecWalker",
    "WalkParams",
    "WalkContexts",
    "contexts_from_walk",
    "corpus_contexts",
    "n_contexts",
]
