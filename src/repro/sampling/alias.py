"""Walker's alias method [17] for O(1) weighted discrete sampling.

The paper uses it for negative sampling: "although the time complexity to
build a table used in the sampling is proportional to the number of nodes,
the time complexity of the sampling is O(1)" (§3.1).  It is also the standard
preprocessing for node2vec's second-order transition probabilities, used by
the walk engine.

Implementation follows Vose's stable construction: small/large worklists,
each cell holds a probability and an alias index.  Sampling draws one uniform
cell index and one uniform threshold — two RNG calls, no search.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["AliasTable"]


class AliasTable:
    """Preprocessed alias table over ``len(weights)`` outcomes.

    Parameters
    ----------
    weights:
        non-negative, not all zero.  Normalization is internal.

    Notes
    -----
    Construction is vectorized where possible and O(n); per-sample cost is
    O(1).  The table is immutable after construction.
    """

    __slots__ = ("prob", "alias", "n", "_weights_sum")

    def __init__(self, weights):
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
        if not np.all(np.isfinite(w)):
            raise ValueError("weights must be finite")
        total = w.sum()
        if total <= 0:
            raise ValueError("weights must not all be zero")
        self.n = w.size
        self._weights_sum = float(total)

        # divide first: keeps `scaled` finite even for subnormal weight sums
        scaled = (w / total) * self.n
        prob = np.ones(self.n, dtype=np.float64)
        alias = np.arange(self.n, dtype=np.int64)

        small = [i for i in range(self.n) if scaled[i] < 1.0]
        large = [i for i in range(self.n) if scaled[i] >= 1.0]
        # Vose's algorithm: pair each deficit cell with a surplus cell.
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] = (scaled[l] + scaled[s]) - 1.0
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        # numerical leftovers: both lists drain to prob = 1
        for rest in (small, large):
            for i in rest:
                prob[i] = 1.0
                alias[i] = i

        self.prob = prob
        self.alias = alias
        self.prob.setflags(write=False)
        self.alias.setflags(write=False)

    # ------------------------------------------------------------------ #

    def sample(self, size: int | tuple | None = None, *, seed=None) -> np.ndarray:
        """Draw outcomes; returns an int64 scalar (``size=None``) or array."""
        rng = as_generator(seed)
        shape = () if size is None else size
        cells = rng.integers(0, self.n, size=shape)
        coins = rng.random(size=shape)
        take_alias = coins >= self.prob[cells]
        out = np.where(take_alias, self.alias[cells], cells)
        if size is None:
            return int(out)
        return out.astype(np.int64, copy=False)

    def probabilities(self) -> np.ndarray:
        """Exact sampling distribution implied by the table.

        Reconstructed from (prob, alias); used by tests to verify the table
        is a faithful encoding of the input weights.
        """
        p = np.zeros(self.n, dtype=np.float64)
        np.add.at(p, np.arange(self.n), self.prob)
        np.add.at(p, self.alias, 1.0 - self.prob)
        return p / self.n

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return f"AliasTable(n={self.n})"
