"""Lockstep batched random walks — vectorized sampling for the q = 1 regime.

The paper's hyper-parameters (Table 2) set q = 1, which collapses Eq. (1)
to "neighbor-weighted choice, except the previous node is re-weighted by
1/p".  That special structure admits a fully vectorized sampler over a
*batch* of walks advancing in lockstep:

1. propose, for every active walk, a neighbor of its current node — one
   gather ``indices[indptr[cur] + floor(u · deg)]`` on unweighted graphs,
   or one binary search of the global cumulative edge-weight array
   (``searchsorted(cumw, base + u·row_total)``) on weighted ones;
2. accept with probability α(x)/α_max where α = 1/p for x = prev and 1
   otherwise — a vectorized comparison, no per-row search;
3. retry only the rejected lanes (expected ≤ max(1/p, 1, p) rounds).

This is the same rejection scheme as :class:`Node2VecWalker`'s
``"rejection"`` strategy, but with the per-walk Python loop replaced by
array ops across the whole batch — typically ~10× faster corpus generation
at Table 2 settings.  Distributional equivalence with the reference walker
is asserted by tests; for q ≠ 1 use the reference walker.

Execution modes
---------------
``walk_batch`` runs either through the vectorized NumPy step loop
(``mode="numpy"``) or through the compiled transition kernel
(:func:`repro.embedding.compiled.walk_fill` — per-step neighbor pick over
the CSR arrays, ``mode="compiled"``).  Both consume the walker's uniform
stream in the same per-lane order, so **the produced batches are
bitwise-identical** — the tests pin this on weighted and unweighted graphs,
``out=`` reuse included.  The compiled path pre-draws uniforms in blocks
(refilled as the kernel reports exhaustion), so it may leave the walker's
RNG *further advanced* than the NumPy path after the same batch; unconsumed
draws are discarded per ``walk_batch`` call, never reused.  ``mode="auto"``
(default) picks the compiled kernel when numba is importable and the NumPy
path otherwise — silently, since both are exact; ``mode="python"`` runs the
kernel's pure-Python form (the test seam).
"""

from __future__ import annotations

import numpy as np

from repro.embedding import compiled as _compiled
from repro.graph.csr import CSRGraph
from repro.sampling.walks import WalkParams
from repro.utils.rng import as_generator
from repro.utils.validation import check_in_set

__all__ = ["BatchedWalker"]

#: uniforms drawn per pool refill of the compiled path: enough for one full
#: rejection round of the whole batch (proposal + acceptance per lane), with
#: a floor so tiny batches do not refill once per round
_POOL_FLOOR = 64


class BatchedWalker:
    """Vectorized lockstep walker for q = 1 (weighted or unweighted).

    Parameters mirror :class:`~repro.sampling.walks.Node2VecWalker` plus the
    execution ``mode`` (module docstring); a ``ValueError`` is raised for
    configurations outside the fast regime (q ≠ 1).
    """

    def __init__(
        self,
        graph: CSRGraph,
        params: WalkParams | None = None,
        *,
        seed=None,
        mode: str = "auto",
    ):
        self.graph = graph
        self.params = params or WalkParams()
        if self.params.q != 1.0:
            raise ValueError("BatchedWalker requires q == 1 (Table 2's value); "
                             "use Node2VecWalker for general q")
        check_in_set("mode", mode, ("auto", "numpy", "compiled", "python"))
        if mode == "compiled" and not _compiled.NUMBA_AVAILABLE:
            raise RuntimeError(
                'BatchedWalker(mode="compiled") requires numba; install the '
                "perf extra (pip install .[perf]) or use mode=\"auto\" to "
                "fall back to the (bitwise-identical) NumPy step loop"
            )
        self.mode = mode
        if mode == "auto":
            self._impl = "compiled" if _compiled.NUMBA_AVAILABLE else "numpy"
        else:
            self._impl = mode
        self.rng = as_generator(seed)
        self._deg = graph.degree()
        # weighted graphs: neighbor choice ∝ edge weight, via one global
        # cumulative-weight array (cumw[lo:hi+1] brackets row cur's edges);
        # None marks the unweighted fast path.  The kernel signature needs
        # an array either way — the empty placeholder is never indexed.
        if np.allclose(graph.weights, 1.0):
            self._cumw = None
        else:
            cumw = np.zeros(graph.weights.shape[0] + 1, dtype=np.float64)
            np.cumsum(graph.weights, out=cumw[1:])
            self._cumw = cumw
        self._cumw_arr = (
            self._cumw if self._cumw is not None
            else np.zeros(0, dtype=np.float64)
        )

    # ------------------------------------------------------------------ #

    def _propose(self, cur: np.ndarray) -> np.ndarray:
        """One neighbor per walk — uniform (vectorized CSR gather) or
        edge-weight-proportional (one batched binary search of the global
        cumulative array); exactly one uniform consumed per lane either
        way."""
        u = self.rng.random(cur.shape[0])
        lo = self.graph.indptr[cur]
        if self._cumw is not None:
            hi = self.graph.indptr[cur + 1]
            base = self._cumw[lo]
            t = base + u * (self._cumw[hi] - base)
            j = np.searchsorted(self._cumw, t, side="right") - 1
            # u·row_total can round up to the row boundary: clip into row
            return self.graph.indices[np.minimum(j, hi - 1)]
        offs = (u * self._deg[cur]).astype(np.int64)
        return self.graph.indices[lo + offs]

    def step_batch(self, prev: np.ndarray, cur: np.ndarray) -> np.ndarray:
        """Advance every walk one biased step (rejection over the batch)."""
        p = self.params.p
        alpha_max = max(1.0 / p, 1.0)
        nxt = np.full(cur.shape[0], -1, dtype=np.int64)
        pending = np.arange(cur.shape[0])
        # dangling current nodes stay -1 (caller truncates those walks)
        alive = self._deg[cur[pending]] > 0
        pending = pending[alive]
        while pending.size:
            cand = self._propose(cur[pending])
            alpha = np.where(cand == prev[pending], 1.0 / p, 1.0)
            accept = self.rng.random(pending.size) * alpha_max <= alpha
            nxt[pending[accept]] = cand[accept]
            pending = pending[~accept]
        return nxt

    def walk_batch(self, starts: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Walks from every start, as an (n_walks, length) array.

        Truncated walks (dangling nodes) are padded with −1 from the
        truncation point on; :meth:`as_walk_list` strips the padding.

        ``out`` lets the caller provide the destination buffer instead of
        allocating one per batch — e.g. a reused scratch array, or a view
        into caller-owned shared storage so the batch lands where a
        consumer will read it with no extra copy.  (The streaming
        pipeline's shm transport currently writes per-walk via
        ``ShmWalkRing.write``; this is the batched-producer counterpart
        for q = 1 workloads.)  It must be an int64 array of shape
        ``(len(starts), length)``; it is returned (fully overwritten,
        padding included).

        The batch is bitwise-identical across execution modes (module
        docstring) — only throughput and the walker RNG's final position
        depend on ``mode``.
        """
        starts = np.asarray(starts, dtype=np.int64)
        W = starts.shape[0]
        length = self.params.length
        if out is None:
            out = np.full((W, length), -1, dtype=np.int64)
        else:
            if out.shape != (W, length):
                raise ValueError(
                    f"out must have shape {(W, length)}, got {out.shape}"
                )
            if out.dtype != np.int64:
                raise ValueError(f"out must be int64, got {out.dtype}")
            out[:] = -1
        out[:, 0] = starts
        if length == 1:
            return out
        if self._impl != "numpy":
            kernel = _compiled.walk_fill
            if self._impl == "python":
                kernel = _compiled.py_func(kernel)
            return self._walk_batch_kernel(out, kernel)

        # first step: uniform neighbor (no bias — there is no previous node)
        active = np.flatnonzero(self._deg[starts] > 0)
        if active.size:
            out[active, 1] = self._propose(starts[active])

        for i in range(2, length):
            active = np.flatnonzero(out[:, i - 1] >= 0)
            if active.size == 0:
                break
            prev = out[active, i - 2]
            cur = out[active, i - 1]
            out[active, i] = self.step_batch(prev, cur)
        return out

    def _walk_batch_kernel(self, out: np.ndarray, kernel) -> np.ndarray:
        """Drive :func:`repro.embedding.compiled.walk_fill` over ``out``.

        The kernel consumes pre-drawn uniforms from a pool and returns
        ``(col, pos)`` when the pool cannot cover its next rejection round;
        the driver refills — unconsumed tail first, fresh draws appended,
        which preserves the stream order (``random(a)`` then ``random(b)``
        is the ``random(a + b)`` stream) — and re-enters.  Each refill
        covers at least one full round of the widest possible pending set,
        so the loop always progresses.
        """
        graph = self.graph
        W, length = out.shape
        p = self.params.p
        pend = np.empty(W, np.int64)
        cand = np.empty(W, np.int64)
        pool = self.rng.random(0)
        col, pos = 1, 0
        while col < length:
            col, pos = kernel(
                out,
                graph.indptr,
                graph.indices,
                self._deg,
                self._cumw_arr,
                self._cumw is not None,
                1.0 / p,
                max(1.0 / p, 1.0),
                pool,
                col,
                pos,
                pend,
                cand,
            )
            if col >= length:
                break
            pool = np.concatenate(
                [pool[pos:], self.rng.random(max(2 * W, _POOL_FLOOR))]
            )
            pos = 0
        return out

    def as_walk_list(self, batch: np.ndarray) -> list[np.ndarray]:
        """Strip −1 padding, one variable-length array per walk."""
        out = []
        for row in batch:
            stop = np.flatnonzero(row < 0)
            out.append(row[: stop[0]].copy() if stop.size else row.copy())
        return out

    def simulate(self, *, shuffle: bool = True) -> list[np.ndarray]:
        """The r-walks-per-node corpus, like ``Node2VecWalker.simulate``."""
        n = self.graph.n_nodes
        starts = []
        for _ in range(self.params.walks_per_node):
            order = self.rng.permutation(n) if shuffle else np.arange(n)
            starts.append(order)
        batch = self.walk_batch(np.concatenate(starts))
        return self.as_walk_list(batch)
