"""Lockstep batched random walks — vectorized sampling for the q = 1 regime.

The paper's hyper-parameters (Table 2) set q = 1, which collapses Eq. (1)
to "uniform over neighbors, except the previous node is re-weighted by
1/p".  That special structure admits a fully vectorized sampler over a
*batch* of walks advancing in lockstep:

1. propose, for every active walk, a uniform neighbor of its current node
   (one gather: ``indices[indptr[cur] + floor(u · deg)]``);
2. accept with probability α(x)/α_max where α = 1/p for x = prev and 1
   otherwise — a vectorized comparison, no per-row search;
3. retry only the rejected lanes (expected ≤ max(1/p, 1, p) rounds).

This is the same rejection scheme as :class:`Node2VecWalker`'s
``"rejection"`` strategy, but with the per-walk Python loop replaced by
array ops across the whole batch — typically ~10× faster corpus generation
at Table 2 settings.  Distributional equivalence with the reference walker
is asserted by tests; for q ≠ 1 or weighted graphs use the reference
walker.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sampling.walks import WalkParams
from repro.utils.rng import as_generator

__all__ = ["BatchedWalker"]


class BatchedWalker:
    """Vectorized lockstep walker for unweighted graphs with q = 1.

    Parameters mirror :class:`~repro.sampling.walks.Node2VecWalker`; a
    ``ValueError`` is raised for configurations outside the fast regime.
    """

    def __init__(self, graph: CSRGraph, params: WalkParams | None = None, *, seed=None):
        self.graph = graph
        self.params = params or WalkParams()
        if self.params.q != 1.0:
            raise ValueError("BatchedWalker requires q == 1 (Table 2's value); "
                             "use Node2VecWalker for general q")
        if not np.allclose(graph.weights, 1.0):
            raise ValueError("BatchedWalker requires an unweighted graph")
        self.rng = as_generator(seed)
        self._deg = graph.degree()

    # ------------------------------------------------------------------ #

    def _propose(self, cur: np.ndarray) -> np.ndarray:
        """One uniform neighbor per walk (vectorized CSR gather)."""
        deg = self._deg[cur]
        offs = (self.rng.random(cur.shape[0]) * deg).astype(np.int64)
        return self.graph.indices[self.graph.indptr[cur] + offs]

    def step_batch(self, prev: np.ndarray, cur: np.ndarray) -> np.ndarray:
        """Advance every walk one biased step (rejection over the batch)."""
        p = self.params.p
        alpha_max = max(1.0 / p, 1.0)
        nxt = np.full(cur.shape[0], -1, dtype=np.int64)
        pending = np.arange(cur.shape[0])
        # dangling current nodes stay -1 (caller truncates those walks)
        alive = self._deg[cur[pending]] > 0
        pending = pending[alive]
        while pending.size:
            cand = self._propose(cur[pending])
            alpha = np.where(cand == prev[pending], 1.0 / p, 1.0)
            accept = self.rng.random(pending.size) * alpha_max <= alpha
            nxt[pending[accept]] = cand[accept]
            pending = pending[~accept]
        return nxt

    def walk_batch(self, starts: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Walks from every start, as an (n_walks, length) array.

        Truncated walks (dangling nodes) are padded with −1 from the
        truncation point on; :meth:`as_walk_list` strips the padding.

        ``out`` lets the caller provide the destination buffer instead of
        allocating one per batch — e.g. a reused scratch array, or a view
        into caller-owned shared storage so the batch lands where a
        consumer will read it with no extra copy.  (The streaming
        pipeline's shm transport currently writes per-walk via
        ``ShmWalkRing.write``; this is the batched-producer counterpart
        for q = 1 workloads.)  It must be an int64 array of shape
        ``(len(starts), length)``; it is returned (fully overwritten,
        padding included).
        """
        starts = np.asarray(starts, dtype=np.int64)
        W = starts.shape[0]
        length = self.params.length
        if out is None:
            out = np.full((W, length), -1, dtype=np.int64)
        else:
            if out.shape != (W, length):
                raise ValueError(
                    f"out must have shape {(W, length)}, got {out.shape}"
                )
            if out.dtype != np.int64:
                raise ValueError(f"out must be int64, got {out.dtype}")
            out[:] = -1
        out[:, 0] = starts
        if length == 1:
            return out

        # first step: uniform neighbor (no bias — there is no previous node)
        active = np.flatnonzero(self._deg[starts] > 0)
        if active.size:
            out[active, 1] = self._propose(starts[active])

        for i in range(2, length):
            active = np.flatnonzero(out[:, i - 1] >= 0)
            if active.size == 0:
                break
            prev = out[active, i - 2]
            cur = out[active, i - 1]
            out[active, i] = self.step_batch(prev, cur)
        return out

    def as_walk_list(self, batch: np.ndarray) -> list[np.ndarray]:
        """Strip −1 padding, one variable-length array per walk."""
        out = []
        for row in batch:
            stop = np.flatnonzero(row < 0)
            out.append(row[: stop[0]].copy() if stop.size else row.copy())
        return out

    def simulate(self, *, shuffle: bool = True) -> list[np.ndarray]:
        """The r-walks-per-node corpus, like ``Node2VecWalker.simulate``."""
        n = self.graph.n_nodes
        starts = []
        for _ in range(self.params.walks_per_node):
            order = self.rng.permutation(n) if shuffle else np.arange(n)
            starts.append(order)
        batch = self.walk_batch(np.concatenate(starts))
        return self.as_walk_list(batch)
