"""Negative sampling [16] for skip-gram training.

The sampler draws "noise" nodes with probability proportional to their
frequency in the walk corpus (the paper: "the sampled frequency as negative
nodes depends on the number of appearances of each node in the entire RW"),
optionally smoothed by the word2vec 3/4 power.  Sampling uses Walker's alias
method, so per-draw cost is O(1) regardless of graph size.

The FPGA implementation reuses one batch of negatives for a whole random walk
(§3.2, following Ji et al. [18]) to save DRAM↔BRAM transfers;
:meth:`NegativeSampler.sample_for_walk` models both policies.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.alias import AliasTable
from repro.utils.rng import as_generator
from repro.utils.validation import check_in_set, check_positive

__all__ = ["NegativeSampler", "walk_frequencies"]


def walk_frequencies(walks, n_nodes: int) -> np.ndarray:
    """Count node appearances over a walk corpus ``RW`` (or one chunk of it).

    One ``np.bincount`` over the concatenated corpus — this is hot on the
    ``two_pass`` counting pass and per-chunk-hot for the ``"decayed"``
    streaming source, where it runs on every virtual chunk.  Returns raw
    int64 counts (zeros included — the sample-ability floor is applied by
    :class:`NegativeSampler`, never here).  Ids ``>= n_nodes`` raise
    ``IndexError`` like the indexed-add implementation this replaced;
    negative ids now raise ``ValueError`` (``np.add.at`` silently wrapped
    them to count the wrong node — stricter on purpose).
    """
    check_positive("n_nodes", n_nodes, integer=True)
    arrays = [a for a in (np.asarray(w, dtype=np.int64) for w in walks) if a.size]
    if not arrays:
        return np.zeros(n_nodes, dtype=np.int64)
    flat = np.concatenate(arrays) if len(arrays) > 1 else arrays[0]
    counts = np.bincount(flat, minlength=n_nodes)  # raises on negative ids
    if counts.shape[0] > n_nodes:
        raise IndexError(
            f"walk node id {int(flat.max())} out of range for n_nodes={n_nodes}"
        )
    return counts.astype(np.int64, copy=False)


class NegativeSampler:
    """Alias-backed unigram negative sampler.

    Parameters
    ----------
    frequencies:
        per-node appearance counts (e.g. from :func:`walk_frequencies`), or
        any non-negative weight vector.  Nodes with *exactly zero* frequency
        get a floor of 1 so every node remains sample-able (the corpus may
        not have visited isolated nodes yet in the dynamic scenario); all
        positive weights — including fractional ones below 1 — are used
        as given.
    power:
        smoothing exponent on the frequencies.  1.0 follows the paper's text
        literally; 0.75 is the word2vec default [16] and ours.
    seed:
        stream for the draws.
    """

    def __init__(self, frequencies, *, power: float = 0.75, seed=None):
        freq = np.asarray(frequencies, dtype=np.float64)
        if freq.ndim != 1 or freq.size == 0:
            raise ValueError("frequencies must be a non-empty 1-D array")
        if np.any(freq < 0):
            raise ValueError("frequencies must be non-negative")
        check_positive("power", power, strict=False)
        self.n_nodes = freq.size
        self.power = float(power)
        # floor only exact zeros: np.maximum(freq, 1.0) would silently lift
        # every fractional weight below 1 and distort user-supplied vectors
        weights = np.where(freq > 0.0, freq, 1.0) ** self.power
        self.table = AliasTable(weights)
        self.rng = as_generator(seed)

    @classmethod
    def from_walks(cls, walks, n_nodes: int, *, power: float = 0.75, seed=None):
        """Build from a walk corpus (the paper's construction)."""
        return cls(walk_frequencies(walks, n_nodes), power=power, seed=seed)

    @classmethod
    def from_degrees(cls, graph, *, power: float = 0.75, seed=None):
        """Degree-proportional fallback used before any walks exist."""
        return cls(
            graph.degree().astype(np.float64), power=power, seed=seed
        )

    # ------------------------------------------------------------------ #

    def sample(self, size=None) -> np.ndarray:
        """Draw negative node ids (scalar if ``size is None``)."""
        return self.table.sample(size, seed=self.rng)

    def draw_batch(self, n_rows: int, n_samples: int) -> np.ndarray:
        """Bulk negatives for a whole chunk: one ``(n_rows, n_samples)``
        alias pass.

        This is the fused-kernel counterpart of :meth:`sample_for_walk` —
        one vectorized draw for every window (or walk, under per-walk
        reuse) of a chunk, instead of one RNG call pair per walk.  The
        distribution is identical to per-walk draws from the same table;
        the RNG *call pattern* differs, so bulk and per-walk consumers of
        one stream produce different (equally valid) negative sequences.
        """
        check_positive("n_rows", n_rows, integer=True)
        check_positive("n_samples", n_samples, integer=True)
        return self.sample((n_rows, n_samples))

    def sample_for_walk(
        self, n_contexts: int, n_samples: int, *, reuse: str = "per_walk"
    ) -> np.ndarray:
        """Negatives for one random walk's training pass.

        Parameters
        ----------
        n_contexts:
            number of center positions in the walk (l − w + 1 = 73 for the
            paper's l=80, w=8).
        n_samples:
            ``ns`` negatives per window (Table 2: 10).
        reuse:
            ``"per_walk"`` — one batch shared by every context (the FPGA
            policy from [18]); ``"per_context"`` — fresh negatives per
            center position (the CPU Algorithm 1 policy).

        Returns
        -------
        (n_contexts, n_samples) int64 array (rows identical when shared).
        """
        check_in_set("reuse", reuse, ("per_walk", "per_context"))
        check_positive("n_contexts", n_contexts, integer=True)
        check_positive("n_samples", n_samples, integer=True)
        if reuse == "per_walk":
            batch = self.sample(n_samples)
            return np.broadcast_to(batch, (n_contexts, n_samples)).copy()
        return self.sample((n_contexts, n_samples))

    def probabilities(self) -> np.ndarray:
        """The exact sampling distribution (for tests/diagnostics)."""
        return self.table.probabilities()

    def __repr__(self) -> str:
        return f"NegativeSampler(n_nodes={self.n_nodes}, power={self.power})"
