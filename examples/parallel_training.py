#!/usr/bin/env python3
"""Host-side parallelism: the streaming walk→train pipeline + batched sampler.

The paper's board overlaps PS-side walk sampling with PL-side training
(§3.2); :func:`repro.parallel.train_parallel` reproduces that overlap on a
multicore host.  Walk chunks stream out of a fork pool through a bounded
prefetch window while the main process trains on them — and the embedding
stays bit-identical for any worker count.

Knobs demonstrated below:

* ``n_workers`` — 0/1 inline, ≥2 a fork pool;
* ``negative_source`` — ``"corpus"`` (paper-exact, buffers the first epoch),
  ``"degree"`` (streams from the first chunk, bounded memory),
  ``"two_pass"`` (paper-exact and bounded, double generation cost),
  ``"decayed"`` (online: decayed streaming frequencies + periodic alias
  rebuilds — see examples/dynamic_streaming.py for its home turf);
* ``prefetch`` / ``chunk_size`` — depth and granularity of the pipeline
  (``chunk_size="auto"`` lets telemetry rebalance it between epochs);
* ``transport`` — ``"shm"`` (zero-copy shared-memory ring) vs ``"pickle"``
  (serialized through the pool result pipe);
* ``exec_backend`` — ``"reference"`` (the bit-exact per-walk loop) vs
  ``"fused"`` (vectorized chunk kernels: bulk negative draw + batched
  gather/scatter updates — the big walks/s lever for the SGD baseline) vs
  ``"blocked"`` (fused draws + rank-k RLS block solves — the lever for the
  paper's proposed OS-ELM model) vs ``"compiled"`` (numba-JIT'd reference
  kernels, **bit-identical to reference**; without numba — the ``perf``
  extra — it warns once and falls back to reference, and telemetry shows
  ``compiled[fallback=reference]``).  The ``"batch_rls"`` model rides the
  span-aware backends one step further: its ``defer_span`` knob
  (``"walk"`` | int | ``"chunk"``) lets one rank-k span legally cross
  walk boundaries — at ``defer_span="chunk"`` every staged work item
  becomes a single shared-negative rank-k solve, this family's raw-speed
  ceiling (``"reference"``/``"compiled"`` reject cross-walk spans);
* ``result.telemetry`` — per-stage timing, IPC bytes, training walks/s and
  contexts/s, realized overlap.

Run:  python examples/parallel_training.py
"""

import time
import warnings

import numpy as np

from repro.graph import amazon_photo_like, barabasi_albert
from repro.parallel import ParallelWalkGenerator, train_parallel
from repro.experiments.hyper import Node2VecParams
from repro.sampling import BatchedWalker, Node2VecWalker


def main() -> None:
    graph = amazon_photo_like(scale=0.08, seed=0)
    hyper = Node2VecParams(r=3, l=40, w=8, ns=5)
    print(f"graph: {graph}")

    # -- multiprocess walk generation ---------------------------------- #
    for workers in (0, 2, 4):
        t0 = time.perf_counter()
        gen = ParallelWalkGenerator(
            graph, hyper.walk_params(), n_workers=workers, seed=1
        )
        walks = gen.all_walks()
        dt = time.perf_counter() - t0
        label = "inline" if workers <= 1 else f"{workers} workers"
        print(f"walk corpus ({label:10s}): {len(walks)} walks in {dt:.2f}s")

    # -- streaming pipeline: negative_source trade-offs ----------------- #
    for source in ("corpus", "degree", "two_pass", "decayed"):
        res = train_parallel(
            graph, dim=32, hyper=hyper, n_workers=4, chunk_size=128,
            negative_source=source, seed=7,
        )
        t = res.telemetry
        print(
            f"negative_source={source:8s}: total {t.total_s:5.2f}s  "
            f"train {t.train_s:5.2f}s  stall {t.wait_s:5.2f}s  "
            f"overlap {t.overlap_efficiency:4.0%}  "
            f"peak buffered walks {t.peak_buffered_walks}"
        )

    # -- walk transport: zero-copy shm vs pickled chunks ---------------- #
    for transport in ("pickle", "shm"):
        res = train_parallel(
            graph, dim=32, hyper=hyper, n_workers=4, chunk_size=128,
            transport=transport, negative_source="degree", seed=7,
        )
        t = res.telemetry
        print(
            f"transport={t.transport:7s}: total {t.total_s:5.2f}s  "
            f"stall {t.wait_s:5.2f}s  "
            f"walk bytes over pickle channel {t.ipc_walk_bytes:>9,}"
        )

    # -- execution backends: reference vs fused/blocked/compiled kernels - #
    # the SGD baseline's per-window Python loop is where the fused kernels
    # shine; the proposed OS-ELM model needs the blocked backend's rank-k
    # RLS block solves (fused alone leaves its recursion per-context); the
    # compiled backend JITs the reference loop itself — same bits, machine
    # code.  Without numba (`pip install .[perf]`) "compiled" emits one
    # RuntimeWarning and trains through the bit-identical reference
    # fallback — telemetry records it as compiled[fallback=reference].
    # batch_rls pushes the blocked lever chunk-wide: defer_span="chunk"
    # folds each staged work item into one shared-negative rank-k solve.
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        for model, backend, kwargs in (
            ("original", "reference", {}), ("original", "fused", {}),
            ("original", "compiled", {}),
            ("proposed", "reference", {}), ("proposed", "blocked", {}),
            ("batch_rls", "blocked", {"defer_span": "chunk"}),
        ):
            res = train_parallel(
                graph, dim=32, hyper=hyper, model=model, n_workers=4,
                chunk_size=128, negative_source="degree",
                exec_backend=backend, seed=7, **kwargs,
            )
            t = res.telemetry
            print(
                f"model={model:9s} exec_backend={t.exec_backend:28s}: "
                f"train {t.train_s:5.2f}s  "
                f"{t.train_walks_per_s:7.0f} walks/s  "
                f"{t.train_contexts_per_s:8.0f} contexts/s"
            )
    for w in caught:
        if issubclass(w.category, RuntimeWarning):
            print(f"(fallback warning seen: {w.message})")

    # -- determinism across worker counts, transports, chunk sizes ------ #
    a = train_parallel(
        graph, dim=32, hyper=hyper, n_workers=0, negative_source="degree", seed=7
    )
    b = train_parallel(
        graph, dim=32, hyper=hyper, n_workers=4, chunk_size="auto",
        transport="shm", negative_source="degree", seed=7,
    )
    print(f"embedding identical across workers/transport/chunking: "
          f"{np.array_equal(a.embedding, b.embedding)}")

    # -- batched lockstep sampler --------------------------------------- #
    # (BatchedWalker's fast regime is unweighted + q=1, so this comparison
    # runs on an unweighted surrogate of similar size)
    flat = barabasi_albert(graph.n_nodes, 8, seed=0)
    t0 = time.perf_counter()
    Node2VecWalker(flat, hyper.walk_params(), seed=2).simulate()
    t_ref = time.perf_counter() - t0
    t0 = time.perf_counter()
    BatchedWalker(flat, hyper.walk_params(), seed=2).simulate()
    t_bat = time.perf_counter() - t0
    print(f"reference walker: {t_ref:.2f}s   batched walker: {t_bat:.2f}s "
          f"({t_ref / t_bat:.1f}x)")


if __name__ == "__main__":
    main()
