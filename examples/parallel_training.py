#!/usr/bin/env python3
"""Host-side parallelism: multiprocess walks + the batched lockstep sampler.

Two independent accelerations of corpus generation (the PS-side work of the
paper's board), both preserving the training result:

* :class:`repro.parallel.ParallelWalkGenerator` — walk chunks fan out over
  worker processes; training consumes them in order, so the embedding is
  bit-identical for any worker count.
* :class:`repro.sampling.BatchedWalker` — a vectorized lockstep sampler for
  the paper's q = 1 setting (same step distribution, no Python-per-step
  loop).

Run:  python examples/parallel_training.py
"""

import time

import numpy as np

from repro.graph import amazon_photo_like
from repro.parallel import ParallelWalkGenerator, train_parallel
from repro.experiments.hyper import Node2VecParams
from repro.sampling import BatchedWalker, Node2VecWalker


def main() -> None:
    graph = amazon_photo_like(scale=0.08, seed=0)
    hyper = Node2VecParams(r=3, l=40, w=8, ns=5)
    print(f"graph: {graph}")

    # -- multiprocess walk generation ---------------------------------- #
    for workers in (0, 2, 4):
        t0 = time.perf_counter()
        gen = ParallelWalkGenerator(
            graph, hyper.walk_params(), n_workers=workers, seed=1
        )
        walks = gen.all_walks()
        dt = time.perf_counter() - t0
        label = "inline" if workers <= 1 else f"{workers} workers"
        print(f"walk corpus ({label:10s}): {len(walks)} walks in {dt:.2f}s")

    # -- determinism across worker counts ------------------------------ #
    a = train_parallel(graph, dim=32, hyper=hyper, n_workers=0, seed=7)
    b = train_parallel(graph, dim=32, hyper=hyper, n_workers=4, seed=7)
    print(f"embedding identical across worker counts: "
          f"{np.array_equal(a.embedding, b.embedding)}")

    # -- batched lockstep sampler --------------------------------------- #
    t0 = time.perf_counter()
    Node2VecWalker(graph, hyper.walk_params(), seed=2).simulate()
    t_ref = time.perf_counter() - t0
    t0 = time.perf_counter()
    BatchedWalker(graph, hyper.walk_params(), seed=2).simulate()
    t_bat = time.perf_counter() - t0
    print(f"reference walker: {t_ref:.2f}s   batched walker: {t_bat:.2f}s "
          f"({t_ref / t_bat:.1f}x)")


if __name__ == "__main__":
    main()
