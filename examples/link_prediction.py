#!/usr/bin/env python3
"""Link prediction with sequentially-trained embeddings.

A second downstream task beyond the paper's node classification: hide a
fraction of edges, train the proposed model on the remaining graph, and
rank candidate pairs by embedding similarity (Hadamard features + logistic
regression, the standard node2vec link-prediction recipe).  Demonstrates
that the OS-ELM embedding supports the same applications as batch node2vec.

Run:  python examples/link_prediction.py
"""

import numpy as np

from repro import train_embedding
from repro.evaluation import OneVsRestLogisticRegression
from repro.experiments.hyper import Node2VecParams
from repro.graph import CSRGraph, amazon_photo_like
from repro.utils.rng import as_generator


def sample_negative_pairs(graph: CSRGraph, n: int, rng) -> np.ndarray:
    out = []
    while len(out) < n:
        u = int(rng.integers(graph.n_nodes))
        v = int(rng.integers(graph.n_nodes))
        if u != v and not graph.has_edge(u, v):
            out.append((u, v))
    return np.asarray(out)


def main() -> None:
    rng = as_generator(0)
    graph = amazon_photo_like(scale=0.06, seed=0)
    print(f"graph: {graph}")

    # Hide 20% of edges as positive test examples.
    edges = graph.edge_array()
    edges = edges[edges[:, 0] != edges[:, 1]]
    perm = rng.permutation(edges.shape[0])
    n_test = edges.shape[0] // 5
    test_pos = edges[perm[:n_test]]
    train_graph = CSRGraph.from_edges(
        graph.n_nodes, edges[perm[n_test:]], node_labels=graph.node_labels
    )

    result = train_embedding(
        train_graph,
        dim=32,
        model="proposed",
        hyper=Node2VecParams(r=4, l=40, w=8, ns=5),
        seed=0,
    )
    emb = result.embedding

    test_neg = sample_negative_pairs(graph, n_test, rng)
    train_neg = sample_negative_pairs(graph, len(perm) - n_test, rng)
    train_pos = edges[perm[n_test:]]

    def hadamard(pairs):
        return emb[pairs[:, 0]] * emb[pairs[:, 1]]

    X_train = np.vstack([hadamard(train_pos), hadamard(train_neg)])
    y_train = np.concatenate([np.ones(len(train_pos)), np.zeros(len(train_neg))])
    X_test = np.vstack([hadamard(test_pos), hadamard(test_neg)])
    y_test = np.concatenate([np.ones(len(test_pos)), np.zeros(len(test_neg))])

    clf = OneVsRestLogisticRegression(reg=1e-3).fit(X_train, y_train.astype(int))
    pred = clf.predict(X_test)
    acc = float(np.mean(pred == y_test))

    # ranking metric: AUC via the Mann-Whitney statistic
    scores = clf.decision_function(X_test)[:, 1]
    order = np.argsort(scores)
    ranks = np.empty_like(order, dtype=float)
    ranks[order] = np.arange(1, len(scores) + 1)
    pos_ranks = ranks[y_test == 1]
    n_pos, n_neg = int(y_test.sum()), int((1 - y_test).sum())
    auc = (pos_ranks.sum() - n_pos * (n_pos + 1) / 2) / (n_pos * n_neg)

    print(f"link prediction on {n_test} held-out edges:")
    print(f"  accuracy {acc:.3f}   AUC {auc:.3f}   (random baseline: 0.5)")


if __name__ == "__main__":
    main()
