#!/usr/bin/env python3
"""Hardware/software co-design with the accelerator simulator.

Explores the accelerator design space the way §4.2/§4.5 of the paper does:
for each embedding width, report the per-walk latency of the calibrated
pipeline model, the resource budget on the XCZU7EV, and the speedup over
the calibrated CPU models — then sweep the sample-stage parallelism to see
where the design stops scaling (the ablation the paper alludes to with its
"pipeline stages are equalized" remark).

Run:  python examples/fpga_codesign.py
"""

from repro.fpga import (
    AcceleratorSpec,
    CALIBRATED_CONSTANTS,
    PipelineModel,
    ResourceEstimator,
    paper_spec,
)
from repro.hw import CORE_I7_11700, CORTEX_A53
from repro.utils.tables import TextTable


def design_point_table() -> None:
    t = TextTable(
        ["dims", "walk (ms)", "vs A53", "vs i7", "DSP %", "BRAM %", "fits?"],
        title="Paper design points (calibrated models)",
    )
    for d in (32, 64, 96):
        walk_ms = PipelineModel(paper_spec(d), CALIBRATED_CONSTANTS).walk_milliseconds()
        a53 = CORTEX_A53.walk_ms("original", d) / walk_ms
        i7 = CORE_I7_11700.walk_ms("original", d) / walk_ms
        usage = ResourceEstimator(paper_spec(d)).estimate()
        util = usage.utilization()
        t.add_row([d, walk_ms, a53, i7, util["dsp"], util["bram36"], usage.fits()])
    print(t.render())


def parallelism_sweep(dim: int = 64) -> None:
    t = TextTable(
        ["lanes", "II (cycles)", "walk (ms)", "DSP used", "fits XCZU7EV?"],
        title=f"Sample-stage parallelism sweep (d={dim})",
    )
    for lanes in (8, 16, 32, 64, 128):
        spec = AcceleratorSpec(dim=dim, base_parallelism=lanes)
        model = PipelineModel(spec, CALIBRATED_CONSTANTS)
        usage = ResourceEstimator(spec).estimate()
        t.add_row(
            [
                lanes,
                model.initiation_interval(),
                model.walk_milliseconds(),
                usage.dsp,
                usage.fits(),
            ]
        )
    print(t.render())
    print(
        "Latency saturates once the per-sample loop bookkeeping dominates "
        "the chunk count — adding lanes past that point only burns DSPs."
    )


def main() -> None:
    design_point_table()
    print()
    parallelism_sweep()


if __name__ == "__main__":
    main()
