#!/usr/bin/env python3
"""Dynamic-graph streaming: seq-scenario replay through the parallel pipeline.

The paper's deployment story (§4.3.2) is an IoT device training on a
*growing* graph: start from a spanning forest, replay the removed edges,
walk from both endpoints of every insertion and train sequentially.  This
example runs that protocol through the streaming engine
(:func:`repro.dynamic.run_seq_scenario` / :func:`repro.api.train_dynamic`):

* every edge event snapshots the ``DynamicGraph`` and emits a walk task,
  so workers generate walks for upcoming insertions *while* the trainer
  consumes the current one (``n_workers``, ``transport``, ``prefetch``
  all apply);
* negatives come from the pluggable source layer — here the online
  ``"decayed"`` source: degree bootstrap, exponentially-decayed streaming
  frequency folds, alias rebuild every K virtual chunks;
* the embedding is bit-identical across worker counts and transports
  (and, for ``"decayed"``, across physical chunk sizes at a fixed
  virtual chunk size);
* with a worker pool, snapshots ship as a *delta chain*: a full pickled
  snapshot every ``snapshot_rebase_every`` events and O(delta) edge
  payloads in between, which workers patch into their cached CSR — same
  embedding, a fraction of the IPC bytes (the demo prints the savings).

Run:  python examples/dynamic_streaming.py
"""

import numpy as np

from repro import train_dynamic
from repro.dynamic import run_drift_scenario, run_seq_scenario
from repro.experiments.hyper import Node2VecParams
from repro.graph import cora_like
from repro.sampling.sources import DecayedSource


def main() -> None:
    graph = cora_like(scale=0.08, seed=0)
    hyper = Node2VecParams(r=3, l=40, w=8, ns=5)
    print(f"graph: {graph}")

    # -- seq replay through the pipeline, online decayed negatives ------- #
    for workers in (0, 2, 4):
        res = run_seq_scenario(
            graph, dim=32, hyper=hyper, seed=7, edges_per_event=8,
            walks_per_endpoint=1, n_workers=workers,
            negative_source=DecayedSource(decay=0.95, rebuild_every=4,
                                          virtual_chunk=64),
        )
        t = res.extras["telemetry"]
        label = "inline" if workers <= 1 else f"{workers} workers"
        print(
            f"seq replay ({label:10s}): {res.n_events:4d} events  "
            f"{res.n_walks:5d} walks  total {t.total_s:5.2f}s  "
            f"stall {t.wait_s:5.2f}s (snapshot share {t.snapshot_stall_s:4.2f}s)  "
            f"sampler rebuilds {t.sampler_rebuilds}"
        )

    # -- delta transport: O(delta) snapshot bytes at high event rates ---- #
    embeds = {}
    for label, rebase in (("full every event", 1), ("delta, rebase 16", 16)):
        res = run_seq_scenario(
            graph, dim=32, hyper=hyper, seed=7, edges_per_event=1,
            max_events=128, walks_per_endpoint=1, n_workers=2,
            snapshot_rebase_every=rebase,
        )
        t = res.extras["telemetry"]
        total = t.ipc_snapshot_bytes + t.ipc_delta_bytes
        embeds[label] = (res.embedding, total)
        print(
            f"delta transport [{label:16s}]: snapshot {t.ipc_snapshot_bytes:8d} B"
            f"  delta {t.ipc_delta_bytes:6d} B  applies {t.delta_applies:3d}"
            f"  rebases {t.rebase_count}"
        )
    (full_e, full_b), (delta_e, delta_b) = embeds.values()
    print(f"delta transport: {full_b / delta_b:.1f}x fewer IPC bytes, "
          f"bit-identical: {np.array_equal(full_e, delta_e)}")

    # -- bit-identity across workers and transports ---------------------- #
    runs = [
        run_seq_scenario(
            graph, dim=32, hyper=hyper, seed=7, edges_per_event=8,
            walks_per_endpoint=1, n_workers=nw, transport=tr,
        ).embedding
        for nw, tr in ((0, "shm"), (4, "shm"), (4, "pickle"))
    ]
    print("replay identical across workers/transports:",
          all(np.array_equal(runs[0], e) for e in runs[1:]))

    # -- the one-call API ------------------------------------------------ #
    res = train_dynamic(graph, dim=32, hyper=hyper, seed=7, n_workers=4,
                        edges_per_event=8, walks_per_endpoint=1)
    print(f"train_dynamic: scenario={res.scenario}  events={res.n_events}  "
          f"snapshots={res.extras['telemetry'].n_snapshots}")

    # -- concept drift: decayed vs frozen sampler ------------------------ #
    for label, source in (
        ("corpus (frozen)", "corpus"),
        ("decayed (online)", DecayedSource(decay=0.9, rebuild_every=4,
                                           virtual_chunk=64)),
    ):
        d = run_drift_scenario(
            graph, dim=32, hyper=hyper, drift_fraction=0.25, seed=1,
            n_workers=2, negative_source=source, model_kwargs={"mu": 0.05},
        )
        print(
            f"drift [{label:16s}]: F1 {d.f1_before:.3f} -> "
            f"{d.f1_after_drift:.3f} (drift) -> {d.f1_recovered:.3f} "
            f"(recovered {d.recovery:4.0%})"
        )


if __name__ == "__main__":
    main()
