#!/usr/bin/env python3
"""Figure 7 in miniature: how the scale factor µ shapes the embedding.

The proposed model reuses the trainable output weights β as its input-side
weights, scaled by µ (§3.1).  Too small and the hidden activations vanish
(nothing to learn from); too large and the RLS updates overshoot.  This
example sweeps µ on a small Cora surrogate and prints the resulting
accuracy curve next to the fixed-random-α baseline.

Run:  python examples/scale_factor_study.py
"""

from repro.dynamic import run_all_scenario
from repro.evaluation import evaluate_embedding
from repro.experiments.hyper import Node2VecParams
from repro.graph import cora_like
from repro.utils.tables import TextTable


def main() -> None:
    graph = cora_like(scale=0.12, seed=0)
    hyper = Node2VecParams(r=3, l=40, w=8, ns=5)

    def f1_for(**model_kwargs) -> float:
        res = run_all_scenario(
            graph, model="proposed", dim=32, hyper=hyper, seed=1,
            model_kwargs=model_kwargs,
        )
        return evaluate_embedding(res.embedding, graph.node_labels, seed=0).micro_f1

    table = TextTable(["mu", "micro F1"], title="Scale factor sweep (d=32)")
    for mu in (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0):
        table.add_row([mu, f1_for(mu=mu)])
    table.add_row(["alpha (random)", f1_for(weight_tying="alpha")])
    print(table.render())
    print(
        "Expected shape (paper Fig. 7): collapse at 0.001, plateau on "
        "[0.005, 0.1], decline beyond; the fixed-alpha baseline sits below "
        "the plateau."
    )


if __name__ == "__main__":
    main()
