#!/usr/bin/env python3
"""Serving quickstart: query a live-training embedding store.

The paper's sequential-training premise (§1) is that the embedding is
usable *while* training proceeds — on the board, the PS reads the table the
PL is still updating.  The host-side analogue is the ``repro.store`` +
``repro.serving`` pair:

1. train through the pipeline with ``store=`` — every epoch publishes a
   versioned, sharded snapshot of the live table (per-shard incremental:
   unchanged shards are shared by reference, zero full-table copies);
2. point an asyncio :class:`repro.serving.EmbeddingService` at the store
   and answer get-vector / link-score / top-k queries, each resolved
   against a published epoch (latest by default, or a pinned older one);
3. for cross-process serving, use ``store="shm"``: a reader process
   attaches to a pinned epoch's shared-memory shards zero-copy.

Run:  python examples/serving_quickstart.py
"""

import asyncio

import numpy as np

from repro import PipelineConfig, serve_embedding, train_embedding
from repro.experiments.hyper import Node2VecParams
from repro.graph import cora_like
from repro.serving import EmbeddingService
from repro.store import ShmEpochReader


async def main() -> None:
    graph = cora_like(scale=0.2, seed=0)
    hyper = Node2VecParams(r=2, l=20, w=6, ns=3)
    print(f"graph: {graph}")

    # -- train with live publishing ------------------------------------- #
    # store= hooks a sharded store into the training loop: each of the 3
    # epochs publishes a version (the config bundle carries the pipeline
    # knobs; individual kwargs would override its fields)
    cfg = PipelineConfig(n_workers=0, negative_source="degree")
    res = train_embedding(
        graph, dim=32, hyper=hyper, seed=7, epochs=3, config=cfg, store="shm"
    )
    store = res.store
    t = res.telemetry
    print(
        f"published epochs {store.epochs()} in {t.store_publish_s * 1e3:.1f}ms "
        f"({t.store_publish_bytes:,} bytes written, "
        f"{t.store_full_copies} full-table copies)"
    )

    # -- serve ----------------------------------------------------------- #
    service = EmbeddingService(store, cache_capacity=1024)

    vec = await service.get_vector(0)
    print(f"get_vector(0): dim {vec.shape[0]}, ||v|| = {np.linalg.norm(vec):.3f}")

    pairs = np.array([[0, 1], [0, graph.n_nodes - 1]])
    scores = await service.score_links(pairs)
    print(f"link scores {pairs.tolist()}: {np.round(scores, 3).tolist()}")

    neighbors = await service.top_k(0, k=5, metric="cosine")
    print(f"top-5 cosine neighbors of node 0: {[n for n, _ in neighbors]}")

    # -- epoch pinning ---------------------------------------------------- #
    # a reader pinned to an old epoch keeps serving it bit-identically no
    # matter how many newer versions retire around it
    with service.reader(epoch=0) as reader:
        then = await service.get_vector(0, epoch=reader.epoch)
        now = await service.get_vector(0)
        drift = float(np.linalg.norm(np.asarray(now) - np.asarray(then)))
        print(f"node 0 moved {drift:.4f} between epoch 0 and epoch 2")

    # -- cross-process attach (the "shm" backend's point) ----------------- #
    store.pin(store.latest_epoch)
    spec = store.manifest_spec()  # plain data: ships over any transport
    with ShmEpochReader.attach(spec) as remote:
        same = np.array_equal(remote.get_one(0), await service.get_vector(0))
        print(f"shm reader attached to epoch {remote.epoch}: bit-identical = {same}")
    store.unpin(spec["epoch"])

    stats = service.telemetry.as_dict()
    print(
        f"telemetry: {stats['get']['n']} gets "
        f"(p50 {stats['get']['p50_s'] * 1e6:.1f}µs), "
        f"cache hit rate {stats['cache_hit_rate']:.0%}"
    )

    # serve_embedding() is the one-call version of the above: it wraps a
    # finished result (or a bare table) in a store + service
    quick = serve_embedding(res.embedding, store="local")
    print(f"serve_embedding snapshot: {quick.store!r}")
    quick.store.close()
    store.close()


if __name__ == "__main__":
    asyncio.run(main())
