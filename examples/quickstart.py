#!/usr/bin/env python3
"""Quickstart: graph in, embedding out, F1 score out.

Trains the paper's proposed OS-ELM skip-gram model on a (scaled-down) Cora
surrogate, evaluates the embedding with a one-vs-rest logistic regression,
and compares against the SGD skip-gram baseline — the smallest end-to-end
tour of the library's public API.

Run:  python examples/quickstart.py
"""

from repro import train_embedding
from repro.evaluation import evaluate_embedding
from repro.experiments.hyper import Node2VecParams
from repro.graph import cora_like


def main() -> None:
    # A Cora-like citation graph (10% scale so this runs in ~30 s).
    graph = cora_like(scale=0.1, seed=0)
    print(f"graph: {graph}  classes: {graph.node_labels.max() + 1}")

    # Table 2 hyper-parameters, with a lighter walk budget for the demo.
    hyper = Node2VecParams(r=5, l=40, w=8, ns=5)

    for model in ("proposed", "original"):
        result = train_embedding(
            graph, dim=32, model=model, hyper=hyper, seed=0
        )
        scores = evaluate_embedding(result.embedding, graph.node_labels, seed=0)
        print(
            f"{model:9s}: micro-F1 {scores.micro_f1:.3f}  "
            f"macro-F1 {scores.macro_f1:.3f}  "
            f"({result.n_walks} walks, {result.n_contexts} contexts, "
            f"{result.ops.mac / 1e6:.0f}M MACs)"
        )


if __name__ == "__main__":
    main()
