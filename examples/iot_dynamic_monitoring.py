#!/usr/bin/env python3
"""IoT scenario: a growing device-communication graph, embedded on-line.

The paper's motivating deployment (§1): an edge device observes a graph that
*changes after deployment*.  Here an IoT network of sensor clusters gains
links over time; we maintain a node embedding with the proposed sequential
model and with the SGD baseline, re-evaluating cluster recoverability as the
graph grows — the "seq" protocol of §4.3.2 with periodic checkpoints.

Run:  python examples/iot_dynamic_monitoring.py
"""

import numpy as np

from repro.embedding import make_model, WalkTrainer
from repro.evaluation import evaluate_embedding
from repro.experiments.hyper import Node2VecParams
from repro.graph import DynamicGraph, edge_stream, forest_split, planted_partition
from repro.sampling import NegativeSampler, Node2VecWalker, walk_frequencies


def main() -> None:
    # 12 sensor clusters; edges = observed device-to-device communication.
    full = planted_partition(480, 12, avg_degree=14, homophily=0.85, seed=7)
    print(f"deployment graph: {full} ({full.node_labels.max() + 1} clusters)")

    hyper = Node2VecParams(r=2, l=30, w=6, ns=5)
    split = forest_split(full, seed=1)
    print(
        f"initial (forest): {split.initial.n_edges} edges; "
        f"{split.removed_edges.shape[0]} arrive after deployment"
    )

    models = {
        "proposed": make_model("proposed", full.n_nodes, 32, seed=0, mu=0.05),
        "original": make_model("original", full.n_nodes, 32, seed=0),
    }
    trainers = {k: WalkTrainer(m, window=hyper.w, ns=hyper.ns) for k, m in models.items()}

    dyn = DynamicGraph(full.n_nodes, initial=split.initial)
    freqs = np.ones(full.n_nodes)
    sampler = NegativeSampler(freqs, seed=3)

    events = list(edge_stream(split.removed_edges, edges_per_event=40))
    checkpoints = {len(events) // 4, len(events) // 2, len(events) - 1}
    for event in events:
        dyn.add_edges(event.edges)
        snapshot = dyn.snapshot()
        walker = Node2VecWalker(snapshot, hyper.walk_params(), seed=100 + event.step)
        walks = walker.walks_from(np.tile(event.touched_nodes, hyper.r))
        freqs += walk_frequencies(walks, full.n_nodes)
        sampler = NegativeSampler(freqs, seed=200 + event.step)
        for name, trainer in trainers.items():
            for walk in walks:
                trainer.train_walk(walk, sampler)

        if event.step in checkpoints:
            frac = dyn.n_edges / full.n_edges
            line = [f"[{100 * frac:5.1f}% of edges]"]
            for name, model in models.items():
                f1 = evaluate_embedding(
                    model.embedding, full.node_labels, seed=0
                ).micro_f1
                line.append(f"{name}: micro-F1 {f1:.3f}")
            print("  ".join(line))

    print(
        "\nThe sequential model tracks the growing graph without retraining "
        "from scratch — the paper's case for on-device OS-ELM training."
    )


if __name__ == "__main__":
    main()
