"""reprolint — repo-specific AST invariant checker.

The library's correctness contracts (bit-identical embeddings across
workers/transports/chunk sizes, leak-free ``SharedMemory`` lifecycles,
registry-rendered backend/source docs) are pinned by example-based tests but
were previously enforced by nothing at the source level.  reprolint walks the
AST of every file with the stdlib ``ast`` module — no third-party
dependencies — and flags the code shapes that historically broke those
contracts.

Rules
-----
``rng-discipline``
    All randomness flows through :mod:`repro.utils.rng`.  Library code may
    not call ``np.random.default_rng`` / ``np.random.RandomState`` or sample
    from the module-level ``np.random.*`` state; test code may not do so
    *unseeded*.
``shm-lifecycle``
    Every ``SharedMemory(create=True)`` must have ``close()``/``unlink()``
    reachable on exception paths (owning class defines/performs cleanup, or
    the creation is guarded by a ``try`` whose handlers unlink).
``registry-sync``
    Backend / negative-source / model / transport name literals in code and
    docstrings must be members of ``EXEC_REGISTRY`` / ``SOURCE_REGISTRY`` /
    ``MODEL_REGISTRY`` / ``TRANSPORTS``.
``fork-safety``
    Objects submitted to ``multiprocessing.Pool`` must not be closures or
    locally-constructed RNG/shm handles — only module-level callables and
    plain data cross the fork boundary.
``hot-loop-alloc``
    No fresh ``np.zeros``/``np.concatenate``/``np.tile``/... allocation
    inside ``for``/``while`` loops of kernel modules (PR 5 hoisted these by
    hand; the rule keeps them hoisted).
``dtype-discipline``
    Float array constructors in kernel modules must pass an explicit
    ``dtype`` so float32/float64 never mix implicitly.

Waivers: ``# reprolint: disable=RULE(reason)`` on the offending line or the
line directly above.  Unused waivers are themselves reported.

Usage: ``python -m tools.reprolint src tests``
"""

from tools.reprolint.core import Violation, lint_file, lint_paths

__all__ = ["Violation", "lint_file", "lint_paths"]
