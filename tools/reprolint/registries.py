"""Extract the repo's name registries from source, without importing it.

The registry-sync rule needs the authoritative vocabularies — negative-source
names, execution-backend names, model names, snapshot transports — but
reprolint must not import ``repro`` (stdlib-only, and the tree being linted
may be broken).  So the vocabularies are read off the AST of the modules that
define them.  A missing module disables only the checks that need it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Registries", "load_registries", "find_repo_root"]


@dataclass(frozen=True)
class Registries:
    """Authoritative name sets; ``None`` means "could not be determined"."""

    sources: frozenset[str] | None = None
    backends: frozenset[str] | None = None
    models: frozenset[str] | None = None
    transports: frozenset[str] | None = None
    stores: frozenset[str] | None = None
    chunk_size_tokens: frozenset[str] = field(default=frozenset({"auto"}))

    def vocabulary(self, knob: str) -> frozenset[str] | None:
        return {
            "negative_source": self.sources,
            "exec_backend": self.backends,
            "model": self.models,
            "transport": self.transports,
            "store": self.stores,
            "chunk_size": self.chunk_size_tokens,
        }.get(knob)


def find_repo_root(start: Path) -> Path | None:
    """Walk upward from ``start`` to the directory containing ``src/repro``."""
    cur = start if start.is_dir() else start.parent
    cur = cur.resolve()
    for candidate in (cur, *cur.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return None


def _parse(path: Path) -> ast.Module | None:
    try:
        return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except (OSError, SyntaxError):
        return None


def _class_name_attrs(tree: ast.Module) -> frozenset[str]:
    """Collect ``name = "literal"`` class attributes (the registry pattern).

    The placeholder ``"?"`` on abstract bases is skipped, matching how
    ``SOURCE_REGISTRY``/``EXEC_REGISTRY`` are built from concrete classes.
    """
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
            if (
                isinstance(target, ast.Name)
                and target.id == "name"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
                and value.value != "?"
            ):
                names.add(value.value)
    return frozenset(names)


def _dict_literal_keys(tree: ast.Module, var: str) -> frozenset[str] | None:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and any(isinstance(t, ast.Name) and t.id == var for t in node.targets)
            and isinstance(node.value, ast.Dict)
        ):
            keys = {
                k.value
                for k in node.value.keys
                if isinstance(k, ast.Constant) and isinstance(k.value, str)
            }
            return frozenset(keys)
    return None


def _tuple_literal(tree: ast.Module, var: str) -> frozenset[str] | None:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and any(isinstance(t, ast.Name) and t.id == var for t in node.targets)
            and isinstance(node.value, (ast.Tuple, ast.List))
        ):
            items = {
                e.value
                for e in node.value.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            }
            return frozenset(items)
    return None


def load_registries(start: Path) -> Registries:
    """Load every vocabulary reachable from ``start``'s repo root."""
    root = find_repo_root(start)
    if root is None:
        return Registries()
    repro = root / "src" / "repro"
    sources = backends = models = transports = stores = None

    tree = _parse(repro / "sampling" / "sources.py")
    if tree is not None:
        extracted = _class_name_attrs(tree)
        sources = extracted or None
    backend_names: set[str] = set()
    # kernels.py defines the registry classes; compiled.py is the kernel
    # module a future backend class could live in — union both so a split
    # never silently shrinks the vocabulary
    for fname in ("kernels.py", "compiled.py"):
        tree = _parse(repro / "embedding" / fname)
        if tree is not None:
            backend_names |= _class_name_attrs(tree)
    backends = frozenset(backend_names) or None
    tree = _parse(repro / "embedding" / "trainer.py")
    if tree is not None:
        models = _dict_literal_keys(tree, "MODEL_REGISTRY")
    tree = _parse(repro / "parallel" / "pipeline.py")
    if tree is not None:
        transports = _tuple_literal(tree, "TRANSPORTS")
    store_names: set[str] = set()
    for path in sorted((repro / "store").glob("*.py")):
        tree = _parse(path)
        if tree is not None:
            store_names |= _class_name_attrs(tree)
    stores = frozenset(store_names) or None
    return Registries(
        sources=sources,
        backends=backends,
        models=models,
        transports=transports,
        stores=stores,
    )
