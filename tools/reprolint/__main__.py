"""``python -m tools.reprolint`` dispatch."""

from tools.reprolint.cli import main

raise SystemExit(main())
