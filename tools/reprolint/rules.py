"""The six invariant rules.

Each rule is a generator ``rule(ctx: FileContext) -> Iterator[Violation]``.
Rules only *report*; waiver filtering and unused-waiver detection live in
:mod:`tools.reprolint.core`.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from tools.reprolint.core import FileContext, Violation

__all__ = ["RULES"]

_NP_ALIASES = frozenset({"np", "numpy"})

# ---------------------------------------------------------------------------#
# shared AST helpers
# ---------------------------------------------------------------------------#


def _dotted(node: ast.expr) -> str | None:
    """``np.random.default_rng`` for nested attribute access, else None."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def _calls_of(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def _has_kwarg(call: ast.Call, name: str) -> bool:
    return any(kw.arg == name for kw in call.keywords)


def _kwarg(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


# ---------------------------------------------------------------------------#
# rule: rng-discipline
# ---------------------------------------------------------------------------#

#: samplers/mutators on the *module-level* ``np.random`` global state — these
#: are process-wide and therefore never reproducible across pool workers.
_MODULE_STATE_ATTRS = frozenset(
    {
        "seed", "get_state", "set_state",
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "bytes",
        "normal", "uniform", "standard_normal", "integers",
        "beta", "binomial", "poisson", "exponential", "gamma", "geometric",
        "lognormal", "multinomial", "pareto", "power", "zipf",
    }
)
_GENERATOR_CTORS = frozenset({"default_rng", "RandomState"})


def rule_rng_discipline(ctx: FileContext) -> Iterator[Violation]:
    """All randomness flows through ``repro.utils.rng`` seed helpers.

    Library code (under ``src/``) must not construct generators directly —
    ``as_generator``/``spawn_generators`` are the only constructors, so every
    stream is seedable and every seed derivation is auditable.  Test/bench
    code may construct seeded generators but never unseeded ones, and nobody
    may touch the module-level ``np.random`` global state (it is shared
    process state: invisible coupling between tests and, after ``fork``,
    identical streams in every pool worker).
    """
    for call in _calls_of(ctx.tree):
        name = _dotted(call.func)
        if name is None:
            continue
        parts = name.split(".")
        if len(parts) != 3 or parts[0] not in _NP_ALIASES or parts[1] != "random":
            continue
        attr = parts[2]
        if attr in _GENERATOR_CTORS:
            seeded = (
                bool(call.args)
                and not (
                    isinstance(call.args[0], ast.Constant)
                    and call.args[0].value is None
                )
            ) or _has_kwarg(call, "seed")
            if ctx.is_library:
                yield Violation(
                    ctx.path,
                    call.lineno,
                    "rng-discipline",
                    f"library code must not call np.random.{attr} directly — "
                    "route seeds through repro.utils.rng.as_generator so every "
                    "stream stays seedable and auditable",
                )
            elif not seeded:
                yield Violation(
                    ctx.path,
                    call.lineno,
                    "rng-discipline",
                    f"unseeded np.random.{attr}() — pass an explicit seed "
                    "(fresh OS entropy makes the run unreproducible)",
                )
        elif attr in _MODULE_STATE_ATTRS:
            yield Violation(
                ctx.path,
                call.lineno,
                "rng-discipline",
                f"np.random.{attr} uses the process-global RNG state — use a "
                "Generator from repro.utils.rng.as_generator instead "
                "(global state is shared by every forked pool worker)",
            )


# ---------------------------------------------------------------------------#
# rule: shm-lifecycle
# ---------------------------------------------------------------------------#


def _is_shm_create(call: ast.Call) -> bool:
    name = _dotted(call.func)
    if name is None or name.split(".")[-1] != "SharedMemory":
        return False
    create = _kwarg(call, "create")
    return isinstance(create, ast.Constant) and create.value is True


def _attr_call_names(tree: ast.AST) -> set[str]:
    """Names of ``obj.<name>()`` method calls anywhere under ``tree``."""
    out = set()
    for call in _calls_of(tree):
        if isinstance(call.func, ast.Attribute):
            out.add(call.func.attr)
    return out


def _class_has_cleanup(cls: ast.ClassDef) -> bool:
    methods = {
        stmt.name
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    if {"close", "unlink"} <= methods:
        return True
    performed = _attr_call_names(cls)
    return {"close", "unlink"} <= performed


def _guarded_by_unlinking_try(ctx: FileContext, call: ast.Call) -> bool:
    """The creation sits in/just before a try whose cleanup unlinks."""
    scope = ctx.enclosing(call, ast.FunctionDef, ast.AsyncFunctionDef) or ctx.tree
    for node in ast.walk(scope):
        if not isinstance(node, ast.Try):
            continue
        cleanup_calls = set()
        for handler in node.handlers:
            cleanup_calls |= _attr_call_names(handler)
        cleanup_calls |= _attr_call_names(ast.Module(body=node.finalbody, type_ignores=[]))
        if "unlink" in cleanup_calls:
            return True
    return False


def rule_shm_lifecycle(ctx: FileContext) -> Iterator[Violation]:
    """Every ``SharedMemory(create=True)`` has cleanup reachable on failure.

    The creating process owns the segment; without ``close()``/``unlink()``
    on exception paths the name leaks into ``/dev/shm`` until reboot (the
    leak tests in ``tests/parallel`` assert zero residue).  A creation
    passes if the owning class defines or performs both ``close`` and
    ``unlink``, or the surrounding function guards it with a try whose
    handler/finally unlinks.
    """
    for call in _calls_of(ctx.tree):
        if not _is_shm_create(call):
            continue
        cls = ctx.enclosing(call, ast.ClassDef)
        if isinstance(cls, ast.ClassDef) and _class_has_cleanup(cls):
            continue
        if _guarded_by_unlinking_try(ctx, call):
            continue
        yield Violation(
            ctx.path,
            call.lineno,
            "shm-lifecycle",
            "SharedMemory(create=True) with no close()/unlink() reachable on "
            "exception paths — the segment leaks into /dev/shm; own it with a "
            "class that defines close/unlink or a try/finally that unlinks",
        )


# ---------------------------------------------------------------------------#
# rule: registry-sync
# ---------------------------------------------------------------------------#

_KNOBS = (
    "negative_source", "exec_backend", "model", "transport", "chunk_size", "store",
)
_STRING_KNOB_RE = re.compile(
    r"\b(negative_source|exec_backend|model|transport|store)\s*=\s*\"([A-Za-z_0-9]+)\""
)


def _check_knob(
    ctx: FileContext, knob: str, value: ast.expr, line: int
) -> Iterator[Violation]:
    if not (isinstance(value, ast.Constant) and isinstance(value.value, str)):
        return
    vocab = ctx.registries.vocabulary(knob)
    if vocab is None or value.value in vocab:
        return
    yield Violation(
        ctx.path,
        line,
        "registry-sync",
        f'{knob}="{value.value}" is not a registered name '
        f"(known: {', '.join(sorted(vocab))}) — registries are the single "
        "source of truth; hand-written name literals drift",
    )


def rule_registry_sync(ctx: FileContext) -> Iterator[Violation]:
    """Name literals for registry knobs must be registry members.

    ``EXEC_REGISTRY``/``SOURCE_REGISTRY``/``MODEL_REGISTRY``/``TRANSPORTS``/
    ``STORE_REGISTRY`` are the single source of truth; the rule checks every
    ``negative_source=``/``exec_backend=``/``model=``/``transport=``/
    ``store=`` keyword argument, function-signature default, and
    ``knob="value"`` token inside string constants (docstrings, error
    messages) against them.
    """
    # (a) keyword arguments at call sites
    for call in _calls_of(ctx.tree):
        for kw in call.keywords:
            if kw.arg in _KNOBS:
                yield from _check_knob(ctx, kw.arg, kw.value, kw.value.lineno)
    # (b) function-signature defaults
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        a = node.args
        for params, defaults in (
            (a.posonlyargs + a.args, a.defaults),
            (a.kwonlyargs, a.kw_defaults),
        ):
            pairs = zip(params[len(params) - len(defaults) :], defaults)
            for param, default in pairs:
                if param.arg in _KNOBS and default is not None:
                    yield from _check_knob(ctx, param.arg, default, default.lineno)
    # (c) knob="value" tokens inside string constants (docstrings, messages)
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Constant) and isinstance(node.value, str)):
            continue
        for match in _STRING_KNOB_RE.finditer(node.value):
            knob, value = match.group(1), match.group(2)
            vocab = ctx.registries.vocabulary(knob)
            if vocab is None or value in vocab:
                continue
            line = node.lineno + node.value[: match.start()].count("\n")
            yield Violation(
                ctx.path,
                line,
                "registry-sync",
                f'string mentions {knob}="{value}" but the registry only '
                f"knows: {', '.join(sorted(vocab))} — update the doc/message "
                "or register the name",
            )


# ---------------------------------------------------------------------------#
# rule: fork-safety
# ---------------------------------------------------------------------------#

_SUBMIT_METHODS = frozenset(
    {
        "apply", "apply_async", "map", "map_async",
        "imap", "imap_unordered", "starmap", "starmap_async", "submit",
    }
)
#: constructors whose results must not be pickled across the fork boundary:
#: generators fork into identical streams, shm handles into double owners.
_RISKY_CTORS = frozenset(
    {"default_rng", "as_generator", "spawn_generators", "SharedMemory",
     "ShmWalkRing", "create", "attach", "RandomState"}
)


def _risky_assignments(scope: ast.AST) -> dict[str, int]:
    """Local names bound to RNG/shm constructor results, name → line."""
    risky: dict[str, int] = {}
    for node in ast.walk(scope):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
            continue
        ctor = _dotted(node.value.func)
        if ctor is None or ctor.split(".")[-1] not in _RISKY_CTORS:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                risky[target.id] = node.lineno
    return risky


def _local_function_names(scope: ast.AST) -> set[str]:
    """Functions defined *inside* this function (closures)."""
    names = set()
    for node in ast.walk(scope):
        if node is scope:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
    return names


def _payload_names(nodes: list[ast.expr]) -> Iterator[ast.Name]:
    """Name nodes appearing as payload data (not attribute/subscript bases).

    ``ring.spec`` passes plain data derived *from* a handle; only the bare
    name crossing the boundary is dangerous.
    """
    stack = list(nodes)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Name):
            yield node
        elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            stack.extend(node.elts)
        elif isinstance(node, ast.Dict):
            stack.extend(v for v in node.values if v is not None)
        elif isinstance(node, ast.Starred):
            stack.append(node.value)
        # Attribute/Subscript/Call payloads: the *result* crosses, not the
        # base object — do not descend.


def rule_fork_safety(ctx: FileContext) -> Iterator[Violation]:
    """Pool submissions carry module-level callables and plain data only.

    Closures and locally-constructed ``Generator``/shm handles pickle (or
    silently fork-share) process state: every worker would inherit the same
    RNG stream, and shm handles would be double-owned.  The pipeline's
    contract is module-level worker functions plus plain-data tuples
    (``ring.spec``, ints, arrays).
    """
    for call in _calls_of(ctx.tree):
        if not (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _SUBMIT_METHODS
            and call.args
        ):
            continue
        scope = ctx.enclosing(call, ast.FunctionDef, ast.AsyncFunctionDef)
        risky = _risky_assignments(scope) if scope is not None else {}
        local_funcs = _local_function_names(scope) if scope is not None else set()

        target = call.args[0]
        if isinstance(target, ast.Lambda):
            yield Violation(
                ctx.path, target.lineno, "fork-safety",
                "lambda submitted to a pool — lambdas do not pickle and close "
                "over parent state; submit a module-level function",
            )
        elif isinstance(target, ast.Name) and target.id in local_funcs:
            yield Violation(
                ctx.path, target.lineno, "fork-safety",
                f"locally-defined function {target.id!r} submitted to a pool — "
                "closures capture parent state (RNGs fork into identical "
                "streams); submit a module-level function",
            )

        payload: list[ast.expr] = list(call.args[1:])
        payload.extend(kw.value for kw in call.keywords)
        for name in _payload_names(payload):
            if name.id in risky:
                yield Violation(
                    ctx.path, name.lineno, "fork-safety",
                    f"{name.id!r} (RNG/shm handle constructed at line "
                    f"{risky[name.id]}) submitted across the fork boundary — "
                    "pass plain data (seeds, specs) and reconstruct in the "
                    "worker",
                )


# ---------------------------------------------------------------------------#
# rules: hot-loop-alloc + dtype-discipline (kernel modules only)
# ---------------------------------------------------------------------------#

#: allocating/concatenating calls that PR 5 hoisted out of per-context loops.
#: np.outer/np.bincount/np.unique/np.arange/np.einsum stay allowed: the
#: blocked-RLS kernel needs them per block by construction.
_HOT_ALLOC_ATTRS = frozenset(
    {
        "zeros", "ones", "empty", "full", "eye", "identity",
        "concatenate", "tile", "stack", "vstack", "hstack",
        "column_stack", "repeat",
    }
)
#: float-defaulting constructors that must pin their dtype in kernel code.
_DTYPE_CTORS = frozenset({"zeros", "ones", "empty", "full", "eye", "identity"})
#: positional index at which ``dtype`` may be passed, per constructor.
_DTYPE_POS = {"zeros": 1, "ones": 1, "empty": 1, "full": 2, "eye": 3, "identity": 1}


def _np_call_attr(call: ast.Call) -> str | None:
    name = _dotted(call.func)
    if name is None:
        return None
    parts = name.split(".")
    if len(parts) == 2 and parts[0] in _NP_ALIASES:
        return parts[1]
    return None


def rule_hot_loop_alloc(ctx: FileContext) -> Iterator[Violation]:
    """No fresh numpy allocation inside kernel ``for``/``while`` loops.

    PR 5's profiling showed ``np.concatenate``/``np.tile``/``np.zeros`` in
    the per-context loop dominating small-dim training; the kernels hoist
    every such buffer.  Applies only to files marked
    ``# reprolint: kernel-module``.
    """
    if not ctx.is_kernel_module:
        return
    for call in _calls_of(ctx.tree):
        attr = _np_call_attr(call)
        if attr not in _HOT_ALLOC_ATTRS:
            continue
        loop = ctx.enclosing(call, ast.For, ast.While)
        if loop is None:
            continue
        yield Violation(
            ctx.path,
            call.lineno,
            "hot-loop-alloc",
            f"np.{attr} allocates inside a kernel loop — hoist the buffer "
            "out of the loop (PR 5 pattern) or waive with the profiling "
            "evidence",
        )


def rule_dtype_discipline(ctx: FileContext) -> Iterator[Violation]:
    """Float array constructors in kernel code pin an explicit dtype.

    Mixed float32/float64 arithmetic silently upcasts and breaks the
    bit-identical golden contract; constructors that default to float64
    must say so.  ``*_like``/``asarray`` inherit dtype and stay exempt.
    Applies only to files marked ``# reprolint: kernel-module``.
    """
    if not ctx.is_kernel_module:
        return
    for call in _calls_of(ctx.tree):
        attr = _np_call_attr(call)
        if attr not in _DTYPE_CTORS:
            continue
        if _has_kwarg(call, "dtype"):
            continue
        if len(call.args) > _DTYPE_POS[attr]:
            continue
        yield Violation(
            ctx.path,
            call.lineno,
            "dtype-discipline",
            f"np.{attr} without an explicit dtype in kernel code — pass "
            "dtype=np.float64 (or the intended dtype) so float32/float64 "
            "never mix implicitly",
        )


RULES = (
    rule_rng_discipline,
    rule_shm_lifecycle,
    rule_registry_sync,
    rule_fork_safety,
    rule_hot_loop_alloc,
    rule_dtype_discipline,
)
