"""Command-line entry point: ``python -m tools.reprolint src tests``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from tools.reprolint.core import lint_paths
from tools.reprolint.rules import RULES


def _list_rules() -> str:
    lines = []
    for rule in RULES:
        rule_id = rule.__name__.removeprefix("rule_").replace("_", "-")
        doc = (rule.__doc__ or "").strip().splitlines()[0]
        lines.append(f"  {rule_id:<18} {doc}")
    lines.append(
        "  unused-waiver      a `# reprolint: disable=...` comment that "
        "suppresses nothing"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="Repo-specific AST invariant checker (stdlib-only).",
        epilog=f"rules:\n{_list_rules()}",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="repo root for registry extraction (default: walk up from cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress the summary line"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"reprolint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    violations, n_files = lint_paths(args.paths, root=args.root or Path.cwd())
    for violation in violations:
        print(violation.render())
    if not args.quiet:
        status = f"{len(violations)} violation(s)" if violations else "clean"
        print(f"reprolint: checked {n_files} file(s): {status}")
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
