"""Engine: file collection, waiver handling, rule dispatch, reporting."""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from tools.reprolint.registries import Registries, load_registries

__all__ = [
    "Violation",
    "FileContext",
    "collect_files",
    "lint_file",
    "lint_paths",
]

#: directory names never descended into — ``fixtures`` holds deliberately
#: violating snippets for the self-tests.
EXCLUDED_DIRS = frozenset(
    {"__pycache__", ".git", ".venv", "venv", "build", "dist", "fixtures", ".mypy_cache", ".ruff_cache"}
)

_WAIVER_RE = re.compile(r"#\s*reprolint:\s*disable=(?P<spec>[A-Za-z0-9_,()\- .:'\"/]+)")
_WAIVER_ITEM_RE = re.compile(r"(?P<rule>[a-z0-9-]+)(?:\((?P<reason>[^()]*)\))?")
_KERNEL_MARKER_RE = re.compile(r"#\s*reprolint:\s*kernel-module\b")
_LIBRARY_MARKER_RE = re.compile(r"#\s*reprolint:\s*library\b")


@dataclass(frozen=True, order=True)
class Violation:
    """One rule hit, addressable as ``path:line: rule: message``."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


@dataclass
class Waiver:
    """A ``# reprolint: disable=RULE(reason)`` comment."""

    line: int
    rules: dict[str, str]
    used: set[str] = field(default_factory=set)


@dataclass
class FileContext:
    """Everything a rule needs to inspect one file."""

    path: str
    source: str
    lines: list[str]
    tree: ast.Module
    registries: Registries
    is_library: bool
    is_kernel_module: bool
    parents: dict[int, ast.AST]

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self.parent(node)
        while cur is not None:
            yield cur
            cur = self.parent(cur)

    def enclosing(self, node: ast.AST, *kinds: type) -> ast.AST | None:
        for anc in self.ancestors(node):
            if isinstance(anc, kinds):
                return anc
        return None


def _build_parents(tree: ast.AST) -> dict[int, ast.AST]:
    parents: dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def parse_waivers(lines: Sequence[str]) -> list[Waiver]:
    waivers = []
    for idx, line in enumerate(lines, start=1):
        match = _WAIVER_RE.search(line)
        if match is None:
            continue
        rules: dict[str, str] = {}
        for item in _WAIVER_ITEM_RE.finditer(match.group("spec")):
            rules[item.group("rule")] = item.group("reason") or ""
        if rules:
            waivers.append(Waiver(line=idx, rules=rules))
    return waivers


def _is_library_path(path: str) -> bool:
    return "src" in Path(path).parts


def lint_file(
    path: str,
    source: str | None = None,
    registries: Registries | None = None,
) -> list[Violation]:
    """Lint one file; returns unwaived violations plus unused-waiver reports."""
    from tools.reprolint.rules import RULES

    if source is None:
        source = Path(path).read_text(encoding="utf-8")
    if registries is None:
        registries = load_registries(Path(path))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 1, "syntax-error", str(exc.msg))]
    lines = source.splitlines()
    ctx = FileContext(
        path=path,
        source=source,
        lines=lines,
        tree=tree,
        registries=registries,
        is_library=_is_library_path(path) or bool(_LIBRARY_MARKER_RE.search(source)),
        is_kernel_module=bool(_KERNEL_MARKER_RE.search(source)),
        parents=_build_parents(tree),
    )
    raw: list[Violation] = []
    for rule in RULES:
        raw.extend(rule(ctx))

    waivers = parse_waivers(lines)
    by_line: dict[int, Waiver] = {w.line: w for w in waivers}
    kept: list[Violation] = []
    for violation in sorted(raw):
        waiver = by_line.get(violation.line) or by_line.get(violation.line - 1)
        if waiver is not None and violation.rule in waiver.rules:
            waiver.used.add(violation.rule)
            continue
        kept.append(violation)
    for waiver in waivers:
        for rule_id in sorted(set(waiver.rules) - waiver.used):
            kept.append(
                Violation(
                    path,
                    waiver.line,
                    "unused-waiver",
                    f"waiver for {rule_id!r} suppresses nothing — remove it",
                )
            )
    return sorted(kept)


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for entry in paths:
        p = Path(entry)
        if p.is_file():
            if p.suffix == ".py":
                out.add(p)
        elif p.is_dir():
            for sub in p.rglob("*.py"):
                if not EXCLUDED_DIRS.intersection(sub.parts):
                    out.add(sub)
    return sorted(out)


def lint_paths(
    paths: Iterable[str | Path], root: Path | None = None
) -> tuple[list[Violation], int]:
    """Lint files/directories; returns ``(violations, files_checked)``."""
    files = collect_files(paths)
    registries = load_registries(root or Path.cwd())
    violations: list[Violation] = []
    for file in files:
        violations.extend(lint_file(str(file), registries=registries))
    return sorted(violations), len(files)
